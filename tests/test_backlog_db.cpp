// End-to-end tests of BacklogDb: the update path, consistency points,
// queries with inheritance and masking, maintenance, recovery, relocation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/backlog_db.hpp"
#include "lsm/run_file.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bs = backlog::storage;

namespace {

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2, std::uint64_t off = 0,
                   bc::LineId line = 0) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.offset = off;
  k.length = 1;
  k.line = line;
  return k;
}

std::vector<bc::CombinedRecord> recs(const std::vector<bc::BackrefEntry>& es) {
  std::vector<bc::CombinedRecord> out;
  for (const auto& e : es) out.push_back(e.rec);
  return out;
}

}  // namespace

TEST(BacklogDb, LiveReferenceVisibleBeforeAndAfterFlush) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(100));
  // Visible straight from the write store.
  auto r = db.query(100);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rec.key.block, 100u);
  EXPECT_EQ(r[0].rec.to, bc::kInfinity);
  EXPECT_EQ(r[0].versions, std::vector<bc::Epoch>{1});  // live at cp 1

  db.consistency_point();
  r = db.query(100);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rec.from, 1u);
  EXPECT_EQ(r[0].versions, std::vector<bc::Epoch>{2});  // live view moved on
}

TEST(BacklogDb, UpdatePathNeverReads) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  // Build several CPs of history first so there is on-disk state to tempt a
  // read-modify-write implementation.
  for (int cp = 0; cp < 5; ++cp) {
    for (std::uint64_t b = 0; b < 500; ++b) db.add_reference(key(b * 10 + cp));
    db.consistency_point();
  }
  const auto before = env.stats();
  for (std::uint64_t b = 0; b < 500; ++b) {
    db.add_reference(key(b * 10 + 7));
    db.remove_reference(key(b * 10));  // deallocation of old references
  }
  db.consistency_point();
  const auto delta = env.stats() - before;
  EXPECT_EQ(delta.page_reads, 0u) << "update path must be read-free (§4)";
  EXPECT_GT(delta.page_writes, 0u);
}

TEST(BacklogDb, DeallocationCompletesRecord) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.registry().take_snapshot(0);  // v=1 keeps the record alive for masking
  db.add_reference(key(7));
  db.consistency_point();  // cp 1 -> 2
  db.registry().take_snapshot(0);  // v=2
  db.consistency_point();  // cp 2 -> 3
  db.remove_reference(key(7));
  db.consistency_point();  // cp 3 -> 4

  const auto raw = db.query_raw(7);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].from, 1u);
  EXPECT_EQ(raw[0].to, 3u);
  // Masked query: visible at snapshots 1 and 2 but not live.
  const auto masked = db.query(7);
  ASSERT_EQ(masked.size(), 1u);
  EXPECT_EQ(masked[0].versions, (std::vector<bc::Epoch>{1, 2}));
}

TEST(BacklogDb, MaskingDropsFullyDeadRecords) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(7));
  db.consistency_point();
  db.remove_reference(key(7));
  db.consistency_point();
  // No snapshot retained the interval [1,2): masked query is empty, raw not.
  EXPECT_TRUE(db.query(7).empty());
  EXPECT_EQ(db.query_raw(7).size(), 1u);
}

TEST(BacklogDb, SameCpChurnLeavesNoTrace) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(5));
  db.remove_reference(key(5));
  const auto s = db.consistency_point();
  EXPECT_EQ(s.records_flushed, 0u);
  EXPECT_TRUE(db.query_raw(5).empty());
}

TEST(BacklogDb, ReallocWithinCpMergesIntervals) {
  // Paper §5.1: alive [3,4), reallocated in CP 4 -> one record [3, inf).
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(5));
  db.consistency_point();  // from=1 on disk, now cp=2
  db.remove_reference(key(5));
  db.add_reference(key(5));  // same CP: prune the To
  db.consistency_point();
  const auto raw = db.query_raw(5);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].from, 1u);
  EXPECT_EQ(raw[0].to, bc::kInfinity);
}

TEST(BacklogDb, RangeQuerySpansBlocks) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  for (std::uint64_t b = 0; b < 100; ++b) db.add_reference(key(1000 + b, b + 2));
  db.consistency_point();
  const auto r = db.query(1000, 100);
  EXPECT_EQ(r.size(), 100u);
  const auto mid = db.query(1040, 10);
  EXPECT_EQ(mid.size(), 10u);
  EXPECT_EQ(mid.front().rec.key.block, 1040u);
}

TEST(BacklogDb, MultipleOwnersOfSharedBlock) {
  // Deduplication: many inodes pointing at one physical block (§4.2).
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  for (bc::InodeNo ino = 2; ino < 12; ++ino) db.add_reference(key(42, ino, ino));
  db.consistency_point();
  const auto r = db.query(42);
  EXPECT_EQ(r.size(), 10u);
}

TEST(BacklogDb, PersistsAcrossReopen) {
  bs::TempDir dir;
  {
    bs::Env env(dir.path());
    bc::BacklogDb db(env);
    db.registry().take_snapshot(0);
    db.add_reference(key(1));
    db.add_reference(key(2));
    db.consistency_point();
  }
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  EXPECT_EQ(db.current_cp(), 2u);
  EXPECT_EQ(db.query_raw(1).size(), 1u);
  EXPECT_EQ(db.query_raw(2).size(), 1u);
  EXPECT_EQ(db.registry().snapshots(0), std::vector<bc::Epoch>{1});
}

TEST(BacklogDb, CrashLosesOnlyUnflushedWrites) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    bc::BacklogDb db(env);
    db.add_reference(key(1));
    db.consistency_point();
    db.add_reference(key(2));  // never flushed — "crash" before CP
  }
  bc::BacklogDb db(env);
  EXPECT_EQ(db.query_raw(1).size(), 1u);
  EXPECT_TRUE(db.query_raw(2).empty());
  // Journal replay (the file system's job) re-issues the lost op.
  db.add_reference(key(2));
  db.consistency_point();
  EXPECT_EQ(db.query_raw(2).size(), 1u);
}

TEST(BacklogDb, MaintenancePreservesQueryResults) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  // Several CPs of mixed adds/removes with snapshots retaining history.
  for (int cp = 0; cp < 10; ++cp) {
    for (std::uint64_t b = 0; b < 200; ++b) {
      const std::uint64_t blk = (cp * 37 + b * 11) % 1000;
      if ((cp + b) % 3 == 0 && !db.query_raw(blk).empty()) {
        // skip: keep the op mix simple and deterministic
      }
      db.add_reference(key(blk, 2 + b % 5, b));
      if (b % 4 == 0) db.remove_reference(key(blk, 2 + b % 5, b));
    }
    if (cp % 3 == 0) db.registry().take_snapshot(0);
    db.consistency_point();
  }
  const auto before = db.scan_all();
  ASSERT_FALSE(before.empty());
  const auto stats = db.maintain();
  const auto after = db.scan_all();

  // Purged records must be exactly those invisible everywhere; the rest of
  // the view is unchanged. Compare the *protected* subset.
  std::vector<bc::CombinedRecord> before_protected;
  for (const auto& r : before) {
    if (db.registry().interval_protected(r.key.line, r.from, r.to))
      before_protected.push_back(r);
  }
  EXPECT_EQ(after, before_protected);
  EXPECT_GT(stats.output_complete + stats.output_incomplete, 0u);
  // Runs collapsed to at most one Combined + one From per partition.
  const auto ds = db.stats();
  EXPECT_LE(ds.from_runs, ds.partitions);
  EXPECT_LE(ds.combined_runs, ds.partitions);
  EXPECT_EQ(ds.to_runs, 0u);
}

TEST(BacklogDb, MaintenanceRequiresEmptyWriteStore) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(1));
  EXPECT_THROW(db.maintain(), std::logic_error);
}

TEST(BacklogDb, MaintenancePurgesDeadHistory) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(1));
  db.consistency_point();
  db.remove_reference(key(1));  // dead: no snapshot spans [1,2)
  db.add_reference(key(2));     // stays live
  db.consistency_point();
  const auto stats = db.maintain();
  EXPECT_EQ(stats.purged, 1u);
  EXPECT_TRUE(db.query_raw(1).empty());
  EXPECT_EQ(db.query_raw(2).size(), 1u);
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
}

TEST(BacklogDb, CloneInheritanceBasics) {
  // The paper's §4.2.2 scenario: block 103 owned by (inode 5, off 2) in line
  // 0 since CP 30; line 1 clones it, then CoW-replaces it with 107 at CP 43.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  db.add_reference(key(103, 5, 2, 0));
  const bc::Epoch snap = reg.take_snapshot(0);
  db.consistency_point();

  const bc::LineId clone = reg.create_clone(0, snap);
  // Clone creation writes nothing.
  {
    const auto s = db.consistency_point();
    EXPECT_EQ(s.records_flushed, 0u);
  }
  // Inherited reference is visible in the clone via expansion.
  {
    const auto r = db.query(103);
    std::vector<bc::LineId> lines;
    for (const auto& e : r) lines.push_back(e.rec.key.line);
    EXPECT_NE(std::find(lines.begin(), lines.end(), clone), lines.end())
        << "clone must inherit the reference";
    EXPECT_NE(std::find(lines.begin(), lines.end(), 0u), lines.end());
  }

  // CoW in the clone: remove 103, add 107.
  db.remove_reference(key(103, 5, 2, clone));
  db.add_reference(key(107, 5, 2, clone));
  const bc::Epoch cow_cp = db.current_cp();
  db.consistency_point();

  // The override terminates inheritance: 103 is no longer owned by the clone
  // in its live view, but 107 is.
  {
    const auto r = db.query(103);
    for (const auto& e : r) {
      if (e.rec.key.line == clone) {
        // Only visible in clone versions before the CoW — none retained.
        ADD_FAILURE() << "override should mask the clone's inherited ref: "
                      << bc::to_string(e.rec);
      }
    }
    const auto r107 = db.query(107);
    ASSERT_EQ(r107.size(), 1u);
    EXPECT_EQ(r107[0].rec.key.line, clone);
    EXPECT_EQ(r107[0].rec.from, cow_cp);
  }
  // Raw view shows the override record the way the paper lays it out.
  {
    const auto raw = db.query_raw(103);
    bool found_override = false;
    for (const auto& r : raw) {
      if (r.key.line == clone && r.is_override() && r.to == cow_cp)
        found_override = true;
    }
    EXPECT_TRUE(found_override);
  }
}

TEST(BacklogDb, CloneOfCloneInheritsTransitively) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  db.add_reference(key(50, 9, 0, 0));
  const bc::Epoch s0 = reg.take_snapshot(0);
  db.consistency_point();
  const bc::LineId l1 = reg.create_clone(0, s0);
  const bc::Epoch s1 = reg.take_snapshot(l1);
  db.consistency_point();
  const bc::LineId l2 = reg.create_clone(l1, s1);
  db.consistency_point();

  const auto r = db.query(50);
  std::vector<bc::LineId> lines;
  for (const auto& e : r) lines.push_back(e.rec.key.line);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<bc::LineId>{0, l1, l2}));
}

TEST(BacklogDb, InheritanceRequiresBranchInsideInterval) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  const bc::Epoch snap = reg.take_snapshot(0);  // snapshot BEFORE the block
  db.consistency_point();
  db.add_reference(key(200, 3, 0, 0));  // from = 2 > snap = 1
  db.consistency_point();
  const bc::LineId clone = reg.create_clone(0, snap);
  const auto r = db.query(200);
  for (const auto& e : r) {
    EXPECT_NE(e.rec.key.line, clone)
        << "block allocated after the branch point must not be inherited";
  }
}

TEST(BacklogDb, ZombieKeepsCloneAncestryQueryable) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  db.add_reference(key(70, 4, 1, 0));
  const bc::Epoch snap = reg.take_snapshot(0);
  db.consistency_point();
  const bc::LineId clone = reg.create_clone(0, snap);
  db.consistency_point();
  // Delete the cloned snapshot (zombie) and even kill line 0's history of
  // the block in the live view.
  reg.delete_snapshot(0, snap);
  db.remove_reference(key(70, 4, 1, 0));
  db.consistency_point();
  db.maintain();  // must NOT purge the zombie-protected record
  const auto r = db.query(70);
  bool clone_sees_it = false;
  for (const auto& e : r) {
    if (e.rec.key.line == clone) clone_sees_it = true;
  }
  EXPECT_TRUE(clone_sees_it) << "zombie ancestry must keep inheritance alive";
}

TEST(BacklogDb, RelocateRewritesAllTables) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  // History: complete record (via snapshot), incomplete record, WS entry.
  db.add_reference(key(300, 2, 0));
  db.add_reference(key(301, 3, 1));
  reg.take_snapshot(0);
  db.consistency_point();
  db.remove_reference(key(301, 3, 1));
  db.consistency_point();
  db.maintain();  // produce Combined + From RS
  db.add_reference(key(302, 4, 2));  // WS-resident

  const std::uint64_t moved = db.relocate(300, 3, 900);
  EXPECT_GE(moved, 3u);
  EXPECT_TRUE(db.query_raw(300, 3).empty());
  const auto r = db.query_raw(900, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].key.block, 900u);
  EXPECT_EQ(r[0].key.inode, 2u);
  EXPECT_EQ(r[1].key.block, 901u);
  EXPECT_EQ(r[1].to, 2u);  // completed interval preserved
  EXPECT_EQ(r[2].key.block, 902u);
  db.consistency_point();
  // Maintenance consumes the deletion vector.
  db.maintain();
  EXPECT_EQ(db.stats().dv_entries, 0u);
  EXPECT_EQ(db.query_raw(900, 3).size(), 3u);
}

TEST(BacklogDb, RelocationSurvivesReopen) {
  bs::TempDir dir;
  {
    bs::Env env(dir.path());
    bc::BacklogDb db(env);
    db.add_reference(key(10));
    db.consistency_point();
    db.relocate(10, 1, 500);
    db.consistency_point();  // persists the deletion vector + new runs
  }
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  EXPECT_TRUE(db.query_raw(10).empty());
  EXPECT_EQ(db.query_raw(500).size(), 1u);
}

TEST(BacklogDb, PartitioningSplitsRunsByBlockRange) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.partition_blocks = 100;
  bc::BacklogDb db(env, opts);
  for (std::uint64_t b = 0; b < 1000; b += 50) db.add_reference(key(b));
  db.consistency_point();
  const auto s = db.stats();
  EXPECT_EQ(s.partitions, 10u);
  EXPECT_EQ(s.from_runs, 10u);
  // Queries spanning partition boundaries see everything.
  EXPECT_EQ(db.query(0, 1000).size(), 20u);
  EXPECT_EQ(db.query(90, 20).size(), 1u);  // only block 100 in [90,110)
}

TEST(BacklogDb, BloomAblationGivesIdenticalResults) {
  bs::TempDir dirA, dirB;
  bs::Env envA(dirA.path()), envB(dirB.path());
  bc::BacklogOptions withBloom, noBloom;
  noBloom.use_bloom = false;
  bc::BacklogDb a(envA, withBloom), b(envB, noBloom);
  for (int cp = 0; cp < 5; ++cp) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      a.add_reference(key(i * 31 % 512, 2, i));
      b.add_reference(key(i * 31 % 512, 2, i));
    }
    a.registry().take_snapshot(0);
    b.registry().take_snapshot(0);
    a.consistency_point();
    b.consistency_point();
  }
  for (std::uint64_t blk = 0; blk < 512; blk += 17) {
    EXPECT_EQ(recs(a.query(blk, 16)), recs(b.query(blk, 16)));
  }
}

TEST(BacklogDb, BloomFiltersReduceReadsOnAbsentBlocks) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.cache_pages = 0;  // no cache: every page access counts
  bc::BacklogDb db(env, opts);
  for (int cp = 0; cp < 20; ++cp) {
    for (std::uint64_t i = 0; i < 50; ++i)
      db.add_reference(key(cp * 1000 + i, 2, i));
    db.consistency_point();
  }
  // Query a block that exists in no run: bloom filters answer negatively
  // without touching the runs.
  const auto before = env.stats();
  EXPECT_TRUE(db.query(999999).empty());
  const auto delta = env.stats() - before;
  EXPECT_EQ(delta.page_reads, 0u);
}

TEST(BacklogDb, QueryOptionsExposeRawViews) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  auto& reg = db.registry();
  db.add_reference(key(1, 2, 0, 0));
  const bc::Epoch snap = reg.take_snapshot(0);
  db.consistency_point();
  reg.create_clone(0, snap);
  db.consistency_point();
  bc::QueryOptions no_expand;
  no_expand.expand = false;
  EXPECT_EQ(db.query(1, 1, no_expand).size(), 1u);  // no inherited record
  EXPECT_EQ(db.query(1, 1).size(), 2u);             // expanded
}

TEST(BacklogDb, StatsTrackRunsAndWs) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  db.add_reference(key(1));
  db.remove_reference(key(2, 3));
  auto s = db.stats();
  EXPECT_EQ(s.ws_from, 1u);
  EXPECT_EQ(s.ws_to, 1u);
  EXPECT_EQ(s.from_runs, 0u);
  db.consistency_point();
  s = db.stats();
  EXPECT_EQ(s.ws_from, 0u);
  EXPECT_EQ(s.from_runs, 1u);
  EXPECT_EQ(s.to_runs, 1u);
  EXPECT_GT(s.db_bytes, 0u);
}

TEST(BacklogDb, ZeroLengthExtentRejected) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  bc::BackrefKey k = key(1);
  k.length = 0;
  EXPECT_THROW(db.add_reference(k), std::invalid_argument);
  EXPECT_THROW(db.remove_reference(k), std::invalid_argument);
}

TEST(BacklogDb, ExtentRecordsCoverMultipleBlocks) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  bc::BackrefKey k = key(400, 6, 0);
  k.length = 8;  // extent of 8 blocks (the btrfs port's length field, §6.1)
  db.add_reference(k);
  db.consistency_point();
  // Query on the extent's first block finds it.
  EXPECT_EQ(db.query(400).size(), 1u);
  EXPECT_EQ(db.query(400)[0].rec.key.length, 8u);
}

TEST(BacklogDb, ManifestEditLogSurvivesManyCps) {
  // The per-CP manifest write is an O(1) append (edit log), not a full
  // rewrite; recovery replays base + edits.
  bs::TempDir dir;
  {
    bs::Env env(dir.path());
    bc::BacklogDb db(env);
    for (int cp = 0; cp < 50; ++cp) {
      db.add_reference(key(100 + cp));
      db.registry().take_snapshot(0);
      db.consistency_point();
    }
    // Manifest cost per CP must not grow with accumulated run count: the
    // file is base + 50 small edits, far below one page per run.
    EXPECT_LT(env.file_size("MANIFEST"), 50u * 4096u);
  }
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  EXPECT_EQ(db.current_cp(), 51u);
  EXPECT_EQ(db.registry().snapshots(0).size(), 50u);
  for (int cp = 0; cp < 50; ++cp) {
    EXPECT_EQ(db.query_raw(100 + cp).size(), 1u) << "cp " << cp;
  }
}

TEST(BacklogDb, TornManifestEditIsDiscarded) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    bc::BacklogDb db(env);
    db.add_reference(key(1));
    db.consistency_point();
    db.add_reference(key(2));
    db.consistency_point();
  }
  // Corrupt the tail: chop a few bytes off the last edit record.
  {
    const auto size = env.file_size("MANIFEST");
    auto file = env.open_file("MANIFEST");
    std::vector<std::uint8_t> buf(size - 5);
    file->read(0, buf);
    auto out = env.create_file("MANIFEST");
    out->append(buf);
  }
  bc::BacklogDb db(env);
  // The torn CP (which flushed block 2) rolls back; block 1 survives.
  EXPECT_EQ(db.query_raw(1).size(), 1u);
  EXPECT_TRUE(db.query_raw(2).empty());
  EXPECT_EQ(db.current_cp(), 2u);
}

TEST(BacklogDb, OrphanRunsRemovedOnRecovery) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    bc::BacklogDb db(env);
    db.add_reference(key(1));
    db.consistency_point();
  }
  // Simulate a crash mid-flush: a run file exists with no manifest entry.
  {
    backlog::lsm::RunWriter w(env, "f_000000_99999999.run", bc::kFromRecordSize,
                              16);
    std::uint8_t buf[bc::kFromRecordSize];
    bc::encode_from({key(77), 9}, buf);
    w.add({buf, bc::kFromRecordSize}, 77);
    w.finish();
  }
  bc::BacklogDb db(env);
  EXPECT_FALSE(env.file_exists("f_000000_99999999.run"));
  EXPECT_TRUE(db.query_raw(77).empty());
  EXPECT_EQ(db.query_raw(1).size(), 1u);
}

TEST(BacklogDb, MaintenanceMergesInBoundedBatches) {
  // With max_open_runs tiny, a large Level-0 backlog must still compact
  // correctly via intermediate Stepped-Merge levels.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.max_open_runs = 4;  // force several merge levels for 40 runs
  bc::BacklogDb db(env, opts);
  for (int cp = 0; cp < 40; ++cp) {
    db.add_reference(key(1000 + cp, 2, cp));
    if (cp % 2 == 0) db.remove_reference(key(1000 + cp - 2, 2, cp - 2));
    db.registry().take_snapshot(0);
    db.consistency_point();
  }
  const auto before = db.scan_all();
  db.maintain();
  const auto after = db.scan_all();
  EXPECT_EQ(after, before);  // all intervals protected by per-CP snapshots
  const auto s = db.stats();
  EXPECT_LE(s.from_runs + s.to_runs + s.combined_runs, 2u);
}

TEST(BacklogDb, SelectivePartitionMaintenance) {
  // §5.3: partitioning lets the compactor work on one partition at a time.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.partition_blocks = 100;
  bc::BacklogDb db(env, opts);
  for (int cp = 0; cp < 6; ++cp) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      db.add_reference(key(b * 10 + cp, 2, b));        // partition 0
      db.add_reference(key(500 + b * 10 + cp, 3, b));  // partition 5
    }
    db.registry().take_snapshot(0);
    db.consistency_point();
  }
  const auto before = db.scan_all();
  const auto s0 = db.stats();
  ASSERT_EQ(s0.partitions, 2u);
  EXPECT_EQ(s0.from_runs, 12u);

  // Compact only the hot partition (covering block 42 -> partition 0).
  const auto m = db.maintain_partition(42);
  EXPECT_GT(m.output_complete + m.output_incomplete, 0u);
  const auto s1 = db.stats();
  // Partition 0 collapsed to <= 2 runs; partition 5's 12 runs untouched.
  EXPECT_LE(s1.from_runs + s1.combined_runs, 2u + 6u);
  EXPECT_EQ(s1.to_runs, 0u + 0u);  // partition 0 had all the To runs? no:
  // partition 5 never saw removals, so it has no To runs to keep.
  EXPECT_EQ(db.scan_all(), before);  // results unchanged either way

  // Now the other one.
  db.maintain_partition(500);
  const auto s2 = db.stats();
  EXPECT_LE(s2.from_runs, 2u);
  EXPECT_LE(s2.combined_runs, 2u);
  EXPECT_EQ(db.scan_all(), before);
}

TEST(BacklogDb, CoveringExtentFoundByMidBlockQuery) {
  // Extent records sort by starting block; a query for a block in the
  // *middle* of an extent must still find it (btrfs-style extents, §6.1).
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  bc::BackrefKey k = key(1000, 6, 0);
  k.length = 16;  // covers blocks [1000, 1016)
  db.add_reference(k);
  db.consistency_point();
  for (bc::BlockNo b : {1000ull, 1007ull, 1015ull}) {
    const auto r = db.query(b);
    ASSERT_EQ(r.size(), 1u) << "block " << b;
    EXPECT_EQ(r[0].rec.key.block, 1000u);
    EXPECT_EQ(r[0].rec.key.length, 16u);
  }
  EXPECT_TRUE(db.query(1016).empty());  // one past the end
  EXPECT_TRUE(db.query(999).empty());   // one before the start
}

TEST(BacklogDb, CoveringExtentAcrossPartitionBoundary) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.partition_blocks = 100;
  bc::BacklogDb db(env, opts);
  bc::BackrefKey k = key(95, 3, 0);
  k.length = 10;  // blocks [95, 105): starts in partition 0, spills into 1
  db.add_reference(k);
  db.consistency_point();
  // A query inside partition 1 must reach back into partition 0's runs.
  const auto r = db.query(102);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rec.key.block, 95u);
}

TEST(BacklogDb, ExtentLifecycleWithDeallocation) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  bc::BackrefKey k = key(500, 4, 0);
  k.length = 8;
  db.add_reference(k);
  db.registry().take_snapshot(0);
  db.consistency_point();
  db.remove_reference(k);  // whole-extent removal, as the btrfs port does
  db.consistency_point();
  const auto r = db.query(503);  // mid-extent
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rec.to, 2u);
  EXPECT_EQ(r[0].versions, std::vector<bc::Epoch>{1});
}

TEST(BacklogDb, MaxExtentSurvivesReopenAndMaintenance) {
  bs::TempDir dir;
  {
    bs::Env env(dir.path());
    bc::BacklogDb db(env);
    bc::BackrefKey k = key(100, 2, 0);
    k.length = 32;
    db.add_reference(k);
    db.consistency_point();
  }
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  // After reopen, mid-extent queries must still work (max_extent_seen_
  // recovered from the manifest).
  EXPECT_EQ(db.query(120).size(), 1u);
  db.maintain();
  EXPECT_EQ(db.query(120).size(), 1u);
}

TEST(BacklogDb, OversizedExtentRejected) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions opts;
  opts.max_extent_blocks = 8;
  bc::BacklogDb db(env, opts);
  bc::BackrefKey k = key(1);
  k.length = 9;
  EXPECT_THROW(db.add_reference(k), std::invalid_argument);
  EXPECT_THROW(db.remove_reference(k), std::invalid_argument);
}

TEST(BacklogDb, ExtentRelocationMovesWholeExtent) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogDb db(env);
  bc::BackrefKey k = key(200, 5, 0);
  k.length = 4;
  db.add_reference(k);
  db.consistency_point();
  db.relocate(200, 4, 900);
  EXPECT_TRUE(db.query(202).empty());
  const auto r = db.query(902);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].rec.key.block, 900u);
  EXPECT_EQ(r[0].rec.key.length, 4u);
}
