// Tests for jsim, the §8 update-in-place journaling file system over
// Backlog — the paper's portability claim.
#include <gtest/gtest.h>

#include "fsim/jsim.hpp"
#include "storage/env.hpp"

namespace bf = backlog::fsim;
namespace bc = backlog::core;
namespace bs = backlog::storage;

TEST(Jsim, InPlaceOverwritesGenerateNoBackrefOps) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::JournalingFileSystem fs(env);
  const auto ino = fs.create_file(8);
  const auto ops_after_create = fs.backref_ops();
  EXPECT_EQ(ops_after_create, 8u);
  // Overwrite every block ten times: zero additional back-reference ops —
  // the defining difference from the write-anywhere fsim.
  for (int i = 0; i < 10; ++i) fs.write_file(ino, 0, 8);
  EXPECT_EQ(fs.backref_ops(), ops_after_create);
  EXPECT_EQ(fs.block_writes(), 8u + 80u);
}

TEST(Jsim, ExtendAllocatesTruncateFrees) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::JournalingFileSystem fs(env);
  const auto ino = fs.create_file(2);
  fs.write_file(ino, 0, 6);  // 2 in place + 4 new
  EXPECT_EQ(fs.file_size_blocks(ino), 6u);
  EXPECT_EQ(fs.backref_ops(), 6u);
  fs.truncate_file(ino, 3);
  EXPECT_EQ(fs.backref_ops(), 9u);  // 3 removals
  fs.checkpoint();
  // Database sees exactly the live pointers.
  for (const auto& [block, owner] : fs.live_pointers()) {
    const auto r = fs.db().query(block);
    ASSERT_EQ(r.size(), 1u) << "block " << block;
    EXPECT_EQ(r[0].rec.key.inode, owner.first);
    EXPECT_EQ(r[0].rec.key.offset, owner.second);
  }
}

TEST(Jsim, QueriesMatchGroundTruth) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::JournalingFileSystem fs(env);
  std::vector<bf::InodeNo> files;
  for (int i = 0; i < 20; ++i) files.push_back(fs.create_file(1 + i % 7));
  for (int i = 0; i < 10; ++i) fs.write_file(files[i], 0, 5);
  for (int i = 15; i < 20; ++i) fs.delete_file(files[i]);
  fs.checkpoint();
  fs.db().maintain();

  const auto truth = fs.live_pointers();
  std::size_t db_live = 0;
  for (bc::BlockNo b = 1; b < fs.max_block(); ++b) {
    const auto r = fs.db().query(b);
    if (truth.contains(b)) {
      ASSERT_EQ(r.size(), 1u) << "block " << b;
      ++db_live;
    } else {
      EXPECT_TRUE(r.empty()) << "block " << b;
    }
  }
  EXPECT_EQ(db_live, truth.size());
}

TEST(Jsim, JournalRecoveryRestoresWriteStore) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::JournalingFileSystem fs(env);
  fs.create_file(4);
  fs.checkpoint();
  const auto ino2 = fs.create_file(3);  // not yet checkpointed
  fs.truncate_file(ino2, 2);

  fs.recover_after_crash();  // drops the WS, replays the journal
  fs.checkpoint();
  // Block layout: file1 = blocks 1-4, file2 kept blocks 5-6, freed 7.
  EXPECT_EQ(fs.db().query(5).size(), 1u);
  EXPECT_EQ(fs.db().query(6).size(), 1u);
  EXPECT_TRUE(fs.db().query(7).empty());
}

TEST(Jsim, UpdateInPlaceBeatsWriteAnywhereOnOverwrites) {
  // The quantitative version of the §8 observation: an overwrite-heavy
  // workload produces dramatically fewer back-reference operations on an
  // update-in-place file system.
  bs::TempDir dir_j, dir_w;
  bs::Env env_j(dir_j.path()), env_w(dir_w.path());

  bf::JournalingFileSystem jfs(env_j);
  const auto ji = jfs.create_file(64);
  for (int i = 0; i < 50; ++i) jfs.write_file(ji, 0, 64);
  jfs.checkpoint();

  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0;
  bf::FileSystem wfs(env_w, fo);
  const auto wi = wfs.create_file(0, 64);
  for (int i = 0; i < 50; ++i) wfs.write_file(0, wi, 0, 64);
  wfs.consistency_point();

  const auto w_ops = wfs.stats().block_writes + wfs.stats().block_frees;
  EXPECT_EQ(jfs.backref_ops(), 64u);
  EXPECT_GT(w_ops, 64u * 50u);  // every CoW rewrite is an add+remove pair
}
