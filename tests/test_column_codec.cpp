// Tests for the §8 column-compression codec.
#include <gtest/gtest.h>

#include <vector>

#include "core/backref_record.hpp"
#include "lsm/column_codec.hpp"
#include "util/random.hpp"

namespace bl = backlog::lsm;
namespace bc = backlog::core;
namespace bu = backlog::util;

TEST(Varint, RoundTripEdgeValues) {
  const std::uint64_t values[] = {0,     1,         127,
                                  128,   16383,     16384,
                                  1ull << 32, UINT64_MAX - 1, UINT64_MAX};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    bl::put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(bl::get_varint(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedInputThrows) {
  std::vector<std::uint8_t> buf;
  bl::put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(bl::get_varint(buf, &pos), std::runtime_error);
}

TEST(Zigzag, RoundTripSigned) {
  const std::int64_t values[] = {0,        1,         -1,       2, -2,
                                 1000000,  -1000000,  INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values) {
    EXPECT_EQ(bl::zigzag_decode(bl::zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the property delta coding needs).
  EXPECT_LT(bl::zigzag_encode(-3), 8u);
}

TEST(ColumnCodec, EmptyBuffer) {
  const auto blob = bl::compress_columns({}, 48);
  std::size_t rec_size = 0;
  const auto back = bl::decompress_columns(blob, &rec_size);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(rec_size, 48u);
}

TEST(ColumnCodec, RoundTripRandomRecords) {
  bu::Rng rng(77);
  std::vector<std::uint8_t> buf(5000 * bc::kCombinedRecordSize);
  for (std::size_t i = 0; i < 5000; ++i) {
    bc::CombinedRecord r;
    r.key.block = rng.below(1u << 20);
    r.key.inode = rng.below(1000);
    r.key.offset = rng.below(256);
    r.key.length = 1;
    r.key.line = rng.below(4);
    r.from = rng.below(10000);
    r.to = rng.chance(0.3) ? bc::kInfinity : rng.below(10000);
    bc::encode_combined(r, buf.data() + i * bc::kCombinedRecordSize);
  }
  const auto blob = bl::compress_columns(buf, bc::kCombinedRecordSize);
  EXPECT_EQ(bl::decompress_columns(blob), buf);
}

TEST(ColumnCodec, SortedBackrefDataCompressesWell) {
  // The §8 claim: sorted tables compress by several x column-wise.
  std::vector<std::uint8_t> buf(10000 * bc::kFromRecordSize);
  for (std::size_t i = 0; i < 10000; ++i) {
    bc::FromRecord r;
    r.key.block = 1000 + i;       // dense ascending blocks
    r.key.inode = 2 + i % 37;     // small repetitive values
    r.key.offset = i % 16;
    r.key.length = 1;
    r.key.line = 0;
    r.from = 5 + i / 200;
    bc::encode_from(r, buf.data() + i * bc::kFromRecordSize);
  }
  const auto blob = bl::compress_columns(buf, bc::kFromRecordSize);
  EXPECT_LT(blob.size() * 4, buf.size()) << "expected at least 4x compression";
  EXPECT_EQ(bl::decompress_columns(blob), buf);
}

TEST(ColumnCodec, RejectsBadInput) {
  std::vector<std::uint8_t> odd(20, 0);
  EXPECT_THROW(bl::compress_columns(odd, 16), std::invalid_argument);  // partial
  EXPECT_THROW(bl::compress_columns(odd, 10), std::invalid_argument);  // not 8k
  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_THROW(bl::decompress_columns(tiny), std::runtime_error);
}

TEST(ColumnCodec, DetectsCorruption) {
  std::vector<std::uint8_t> buf(100 * 16);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::uint8_t>(i * 7);
  auto blob = bl::compress_columns(buf, 16);
  blob[blob.size() / 2] ^= 0xff;
  EXPECT_THROW(bl::decompress_columns(blob), std::runtime_error);
}
