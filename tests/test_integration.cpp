// Randomized end-to-end property tests: after arbitrary op sequences the
// Backlog database and the file-system ground truth must agree exactly
// (invariant #1 of DESIGN.md), across CPs, snapshots, clones, dedup,
// maintenance, relocation and crash recovery.
#include <gtest/gtest.h>

#include <memory>

#include "fsim/fsim.hpp"
#include "fsim/verifier.hpp"
#include "fsim/workload.hpp"
#include "storage/env.hpp"
#include "util/random.hpp"

namespace bf = backlog::fsim;
namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bu = backlog::util;

namespace {

struct ChaosParams {
  std::uint64_t seed;
  bool dedup;
  bool clones;
  std::uint64_t maintain_every_cps;  // 0 = never
  std::uint64_t partition_blocks;
};

void PrintTo(const ChaosParams& p, std::ostream* os) {
  *os << "seed" << p.seed << (p.dedup ? "_dedup" : "")
      << (p.clones ? "_clones" : "") << "_m" << p.maintain_every_cps << "_p"
      << p.partition_blocks;
}

class ChaosVerify : public ::testing::TestWithParam<ChaosParams> {};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosVerify,
    ::testing::Values(ChaosParams{1, false, false, 0, 1ull << 20},
                      ChaosParams{2, true, false, 0, 1ull << 20},
                      ChaosParams{3, true, true, 0, 1ull << 20},
                      ChaosParams{4, true, true, 5, 1ull << 20},
                      ChaosParams{5, true, true, 3, 256},
                      ChaosParams{6, false, true, 4, 64},
                      ChaosParams{7, true, false, 2, 1ull << 20},
                      ChaosParams{8, true, true, 7, 128}));

TEST_P(ChaosVerify, DbMatchesGroundTruthThroughChaos) {
  const ChaosParams p = GetParam();
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;  // explicit CPs
  fo.dedup_fraction = p.dedup ? 0.15 : 0.0;
  fo.rng_seed = p.seed * 1000 + 17;
  bc::BacklogOptions bo;
  bo.partition_blocks = p.partition_blocks;
  bf::FileSystem fs(env, fo, bo);

  bu::Rng rng(p.seed);
  std::vector<bf::InodeNo> files;
  std::vector<bc::Epoch> snaps;
  std::vector<bf::LineId> clones;

  const int cps = 12;
  for (int cp = 0; cp < cps; ++cp) {
    const int ops = 1 + static_cast<int>(rng.below(30));
    for (int i = 0; i < ops; ++i) {
      const auto kind = rng.below(10);
      if (kind < 4 || files.empty()) {
        files.push_back(fs.create_file(0, 1 + rng.below(6)));
      } else if (kind < 7) {
        const auto ino = files[rng.below(files.size())];
        const auto size = fs.file_size_blocks(0, ino);
        if (size > 0) fs.write_file(0, ino, rng.below(size), 1 + rng.below(3));
      } else if (kind < 8) {
        const auto ino = files[rng.below(files.size())];
        fs.truncate_file(0, ino, fs.file_size_blocks(0, ino) / 2);
      } else {
        const std::size_t i2 = rng.below(files.size());
        fs.delete_file(0, files[i2]);
        files.erase(files.begin() + static_cast<std::ptrdiff_t>(i2));
      }
    }
    // Snapshot / clone churn.
    if (rng.chance(0.5)) {
      snaps.push_back(fs.take_snapshot(0));
      if (snaps.size() > 3) {
        const std::size_t victim = rng.below(snaps.size() - 1);
        fs.delete_snapshot(0, snaps[victim]);
        snaps.erase(snaps.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    if (p.clones && !snaps.empty() && rng.chance(0.4)) {
      const auto clone = fs.create_clone(0, snaps[rng.below(snaps.size())]);
      clones.push_back(clone);
      // Dirty the clone so overrides appear.
      for (const auto ino : fs.list_files(clone)) {
        if (rng.chance(0.5) && fs.file_size_blocks(clone, ino) > 0) {
          fs.write_file(clone, ino, 0, 1);
        }
      }
      if (clones.size() > 2) {
        fs.delete_clone_head(clones.front());
        clones.erase(clones.begin());
      }
    }
    fs.consistency_point();
    if (p.maintain_every_cps > 0 &&
        (cp + 1) % static_cast<int>(p.maintain_every_cps) == 0) {
      fs.db().maintain();
    }
    // Verify at several points, not only at the end.
    if (cp == cps / 2 || cp == cps - 1) {
      const auto result = bf::verify_backrefs(fs);
      ASSERT_TRUE(result.ok)
          << "cp=" << cp << " refs=" << result.ground_truth_refs << " vs "
          << result.db_refs
          << (result.errors.empty() ? "" : "\n  " + result.errors[0]);
    }
  }
}

TEST(Integration, CrashRecoveryReplaysJournal) {
  bs::TempDir dir;
  auto env = std::make_unique<bs::Env>(dir.path());
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0.1;

  // Phase 1: durable history + some un-checkpointed tail ops.
  std::deque<bf::JournalOp> tail;
  {
    bf::FileSystem fs(*env, fo);
    bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
    gen.run_block_writes(500);
    fs.take_snapshot(0);
    fs.consistency_point();
    gen.run_block_writes(200);  // these live only in WS + journal
    tail = fs.journal();
    // "Crash": destroy the FileSystem without a CP. The BacklogDb write
    // store evaporates; the manifest still describes the last CP.
  }

  // Phase 2: recover — reopen the db, replay the journal, compare.
  env = std::make_unique<bs::Env>(dir.path());
  bc::BacklogDb db(*env);
  const auto before_replay = db.scan_all();
  bf::BacklogSink sink(db);
  for (const auto& op : tail) {
    if (op.add) {
      sink.add_reference(op.key);
    } else {
      sink.remove_reference(op.key);
    }
  }
  db.consistency_point();
  const auto after_replay = db.scan_all();
  EXPECT_GT(after_replay.size(), before_replay.size());

  // Control: the same run without a crash produces identical records.
  bs::TempDir dir2;
  bs::Env env2(dir2.path());
  {
    bf::FileSystem fs(env2, fo);
    bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
    gen.run_block_writes(500);
    fs.take_snapshot(0);
    fs.consistency_point();
    gen.run_block_writes(200);
    fs.consistency_point();
    EXPECT_EQ(fs.db().scan_all(), after_replay);
  }
}

TEST(Integration, MaintenanceIsIdempotentOnQueries) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0.2;
  bf::FileSystem fs(env, fo);
  bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
  for (int cp = 0; cp < 6; ++cp) {
    gen.run_block_writes(300);
    if (cp % 2 == 0) fs.take_snapshot(0);
    fs.consistency_point();
  }
  ASSERT_TRUE(bf::verify_backrefs(fs).ok);
  fs.db().maintain();
  ASSERT_TRUE(bf::verify_backrefs(fs).ok);
  fs.db().maintain();  // second pass over already-compacted state
  ASSERT_TRUE(bf::verify_backrefs(fs).ok);
}

TEST(Integration, VolumeShrinkScenario) {
  // The paper's bulk-migration use case (§3): evacuate the top half of the
  // block space using back-reference queries, then verify full consistency.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0.1;
  bf::FileSystem fs(env, fo);
  bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
  gen.run_block_writes(400);
  fs.take_snapshot(0);
  fs.consistency_point();
  gen.run_block_writes(200);
  fs.consistency_point();

  const bf::BlockNo limit = fs.max_block();
  const bf::BlockNo cut = limit / 2;
  std::uint64_t moved = 0;
  // Walk the evacuation region; relocate every allocated block to new space
  // beyond the original high-water mark.
  for (bf::BlockNo b = cut; b < limit; ++b) {
    if (!fs.block_allocated(b)) continue;
    const bf::BlockNo target = limit + 1000 + moved;  // fresh space
    fs.relocate_extent(b, 1, target);
    ++moved;
  }
  ASSERT_GT(moved, 0u);
  fs.consistency_point();
  for (bf::BlockNo b = cut; b < cut + 100; ++b) {
    EXPECT_TRUE(fs.db().query(b).empty());
  }
  const auto result = bf::verify_backrefs(fs);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  fs.db().maintain();
  EXPECT_TRUE(bf::verify_backrefs(fs).ok);
}
