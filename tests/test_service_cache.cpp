// The service-wide cache stack: BlockCache concurrency + invalidation, the
// per-volume epoch-tagged ResultCache, and the VolumeManager wiring that
// binds them (shared budget, CoW dedup, cache_stats/clear_caches).
//
// The correctness bar throughout: a cache may only ever change how many
// pages are read, never what a query answers. Every test drives a workload
// whose answers are known and checks them with caching forced into its
// nastiest regime (constant eviction, racing invalidation, epoch churn).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/backlog_db.hpp"
#include "service/service.hpp"
#include "storage/block_cache.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.length = 1;
  return k;
}

bsvc::ServiceOptions service_options(const std::filesystem::path& root,
                                     std::size_t shards = 2) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = root;
  o.db_options.expected_ops_per_cp = 512;
  o.sync_writes = false;
  return o;
}

void fill_volume(bsvc::VolumeManager& vm, const std::string& tenant,
                 std::uint64_t blocks, int cps = 4) {
  for (int cp = 0; cp < cps; ++cp) {
    std::vector<bsvc::UpdateOp> batch;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      bsvc::UpdateOp op;
      op.kind = bsvc::UpdateOp::Kind::kAdd;
      op.key = key(b * cps + cp);
      batch.push_back(op);
    }
    vm.apply_batch(tenant, std::move(batch)).get();
    vm.consistency_point(tenant).get();
  }
}

}  // namespace

// --- BlockCache concurrency -------------------------------------------------

TEST(BlockCacheConcurrency, EraseFileRacesReaders) {
  // Readers hammer get() on two files while an invalidator loops
  // erase_file()/clear() against them. Under TSan this is the data-race
  // proof; everywhere it checks that a page handed out is always the right
  // page (a reader may hold a shared_ptr to an erased entry — that is the
  // designed behavior, the bytes are immutable).
  bs::TempDir dir;
  bs::Env env(dir.path());
  constexpr std::uint64_t kPages = 8;
  for (const char* name : {"a.run", "b.run"}) {
    auto f = env.create_file(name);
    std::vector<std::uint8_t> data(kPages * bs::kPageSize);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>((i / bs::kPageSize) ^ name[0]);
    }
    f->append(data);
    f->sync();
  }
  auto fa = env.open_file("a.run");
  auto fb = env.open_file("b.run");

  bs::BlockCache cache(4 * bs::kPageSize, /*shards=*/2);  // constant eviction
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const bs::RandomAccessFile& f = (t % 2 == 0) ? *fa : *fb;
      const std::uint8_t tag = (t % 2 == 0) ? 'a' : 'b';
      std::uint64_t page = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        page = (page + 3) % kPages;
        const auto p = cache.get(f, page);
        ASSERT_EQ((*p)[0], static_cast<std::uint8_t>(page ^ tag));
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.erase_file(fa->dev(), fa->ino());
      cache.erase_file(fb->dev(), fb->ino());
      cache.clear();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& r : readers) r.join();
  invalidator.join();

  EXPECT_GT(checked.load(), 0u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, checked.load());
}

// --- ResultCache epoch invalidation ------------------------------------------

TEST(ResultCache, EpochTagInvalidatesAcrossEveryMutatingVerb) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bc::BacklogOptions o;
  o.result_cache_entries = 32;
  bc::BacklogDb db(env, o);

  const auto cached_query = [&](bc::BlockNo b) { return db.query(b); };
  const auto expect_fresh_then_hit = [&](bc::BlockNo b, const char* what) {
    const auto first = cached_query(b);  // populate (miss, or hit if warm)
    const auto s0 = db.result_cache_stats();
    const auto second = cached_query(b);
    EXPECT_EQ(first, second);
    const auto s1 = db.result_cache_stats();
    EXPECT_EQ(s1.hits, s0.hits + 1) << what;
    EXPECT_EQ(s1.misses, s0.misses) << what;
    return first;
  };

  db.add_reference(key(100));
  db.consistency_point();

  // Populate + hit.
  expect_fresh_then_hit(100, "baseline");

  // Update: bumps the db mutation counter -> cached entry is stale.
  db.add_reference(key(100, /*ino=*/3));
  {
    const auto before = db.result_cache_stats();
    const auto r = db.query(100);
    EXPECT_EQ(r.size(), 2u);  // ws entry + run entry, not the stale single
    const auto after = db.result_cache_stats();
    EXPECT_EQ(after.stale_hits, before.stale_hits + 1) << "update";
  }

  // Consistency point: stale again (live-view epoch moved).
  const auto pre_cp = db.query(100);
  db.consistency_point();
  {
    const auto before = db.result_cache_stats();
    const auto r = db.query(100);
    EXPECT_NE(r, pre_cp);  // versions advanced with the CP
    EXPECT_EQ(db.result_cache_stats().stale_hits, before.stale_hits + 1)
        << "consistency_point";
  }

  // Snapshot (registry mutation, no db write): must invalidate — masking
  // depends on retained versions.
  expect_fresh_then_hit(100, "pre-snapshot");
  const bc::Epoch snap_v = db.registry().take_snapshot(0);
  {
    const auto before = db.result_cache_stats();
    db.query(100);
    EXPECT_EQ(db.result_cache_stats().stale_hits, before.stale_hits + 1)
        << "take_snapshot";
  }

  // Clone (registry mutation): same rule.
  expect_fresh_then_hit(100, "pre-clone");
  const bc::LineId clone = db.registry().create_clone(0, snap_v);
  {
    const auto before = db.result_cache_stats();
    db.query(100);
    EXPECT_EQ(db.result_cache_stats().stale_hits, before.stale_hits + 1)
        << "create_clone";
  }

  // Snapshot deletion (registry mutation): same rule.
  expect_fresh_then_hit(100, "pre-delete");
  db.registry().kill_line(clone);
  {
    const auto before = db.result_cache_stats();
    db.query(100);
    EXPECT_EQ(db.result_cache_stats().stale_hits, before.stale_hits + 1)
        << "kill_line";
  }

  // Maintenance: purging changes query_raw-visible state; the mutation
  // counter bumps even when masked answers are invariant.
  expect_fresh_then_hit(100, "pre-maintain");
  db.maintain();
  {
    const auto before = db.result_cache_stats();
    db.query(100);
    EXPECT_EQ(db.result_cache_stats().stale_hits, before.stale_hits + 1)
        << "maintain";
  }
}

// --- service wiring -----------------------------------------------------------

TEST(ServiceCache, TinySharedBudgetForcesEvictionKeepsAnswers) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  so.cache.capacity_bytes = 2 * bs::kPageSize;  // pathological: ~1 page/stripe
  so.cache.block_cache_shards = 2;
  bsvc::VolumeManager vm(so);
  for (const char* t : {"alice", "bob"}) {
    vm.open_volume(t);
    fill_volume(vm, t, 400);
  }
  // Two query sweeps; the second must return identical answers even though
  // nearly every page was evicted between sweeps.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const char* t : {"alice", "bob"}) {
      for (bc::BlockNo b = 0; b < 1600; b += 97) {
        const auto r = vm.query(t, b).get();
        ASSERT_EQ(r.size(), 1u) << t << " block " << b << " sweep " << sweep;
      }
    }
  }
  const auto s = vm.block_cache().stats();
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, 2u);  // never over budget
  EXPECT_LE(s.bytes, so.cache.capacity_bytes);
}

TEST(ServiceCache, CapacityZeroDisablesPageCaching) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  so.cache.capacity_bytes = 0;  // the paper's cold-cache configuration
  bsvc::VolumeManager vm(so);
  vm.open_volume("alice");
  fill_volume(vm, "alice", 200);
  for (bc::BlockNo b = 0; b < 800; b += 31) {
    ASSERT_EQ(vm.query("alice", b).get().size(), 1u);
  }
  const auto s = vm.block_cache().stats();
  EXPECT_FALSE(vm.block_cache().enabled());
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);  // reads flowed through, nothing stuck
}

TEST(ServiceCache, CowCloneDedupesCachedPages) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  bsvc::VolumeManager vm(so);
  vm.open_volume("alice");
  fill_volume(vm, "alice", 400);
  const bc::Epoch snap = vm.take_snapshot("alice").get();
  vm.clone_volume("alice", "beta", 0, snap);

  // Warm the cache through the source...
  for (bc::BlockNo b = 0; b < 1600; b += 13) vm.query("alice", b).get();
  const auto warm = vm.block_cache().stats();
  EXPECT_GT(warm.entries, 0u);

  // ...then read the same history through the clone: its runs are hard
  // links to alice's, so (dev, ino, page) keys match and the sweep is
  // nearly all hits — no second copy of the shared pages is cached.
  for (bc::BlockNo b = 0; b < 1600; b += 13) vm.query("beta", b).get();
  const auto after = vm.block_cache().stats();
  EXPECT_GT(after.hits, warm.hits);
  // The clone's sweep reads only pages alice already cached (plus its own
  // tiny manifest delta) — entry count must not double.
  EXPECT_LT(after.entries, 2 * warm.entries);
}

TEST(ServiceCache, ClearCachesAndReportRoundTrip) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  so.cache.result_cache_entries = 64;
  bsvc::VolumeManager vm(so);
  vm.open_volume("alice");
  fill_volume(vm, "alice", 100);
  vm.query("alice", 5).get();
  vm.query("alice", 5).get();  // result-cache hit

  auto report = vm.cache_stats();
  EXPECT_TRUE(report.block_shared);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].tenant, "alice");
  EXPECT_GE(report.tenants[0].result.hits, 1u);
  EXPECT_GT(report.block.entries, 0u);

  vm.clear_caches();
  report = vm.cache_stats();
  EXPECT_EQ(report.block.entries, 0u);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].result.entries, 0u);
  // Cold again, but answers unchanged.
  ASSERT_EQ(vm.query("alice", 5).get().size(), 1u);
}

TEST(ServiceCache, LegacyPerVolumeModeStillWorks) {
  // The compat shim: shared cache off, every db builds a private cache from
  // the deprecated cache_pages knob; the service-wide cache stays disabled.
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  so.cache.enable_block_cache = false;
  so.db_options.cache_pages = 64;
  bsvc::VolumeManager vm(so);
  vm.open_volume("alice");
  fill_volume(vm, "alice", 200);
  for (bc::BlockNo b = 0; b < 800; b += 31) {
    ASSERT_EQ(vm.query("alice", b).get().size(), 1u);
  }
  const auto report = vm.cache_stats();
  EXPECT_FALSE(report.block_shared);
  // The report sums the per-volume private caches: alice's 64-page budget
  // shows up, and her read traffic is accounted.
  EXPECT_EQ(report.block.capacity_bytes, 64 * bs::kPageSize);
  EXPECT_GT(report.block.hits + report.block.misses, 0u);
}

TEST(ServiceCache, DestroyVolumeInvalidatesOnlyLastLinks) {
  // destroy_volume deletes outside the volume's Env (the Env is already
  // closed), so the service must do the last-link invalidation itself.
  // Pages of runs still shared with a clone survive; sole-owned pages go.
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  bsvc::VolumeManager vm(so);
  vm.open_volume("alice");
  fill_volume(vm, "alice", 400);
  const bc::Epoch snap = vm.take_snapshot("alice").get();
  vm.clone_volume("alice", "beta", 0, snap);
  for (bc::BlockNo b = 0; b < 1600; b += 13) vm.query("alice", b).get();
  const auto warm = vm.block_cache().stats();
  ASSERT_GT(warm.entries, 0u);

  vm.destroy_volume("alice");
  // beta still holds links to the shared runs, so the bulk of the cached
  // pages must survive and beta's queries still verify (clone queries
  // return the inherited record expanded into the clone's line too).
  for (bc::BlockNo b = 0; b < 1600; b += 97) {
    ASSERT_FALSE(vm.query("beta", b).get().empty());
  }
  vm.destroy_volume("beta");
  // Last links gone: everything cached for those files must be dropped.
  EXPECT_GT(vm.block_cache().stats().invalidations, 0u);
}
