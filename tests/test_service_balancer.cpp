// Balancer policy tests: deterministic convergence from a fully skewed
// placement (imbalance metric strictly decreases, hysteresis stops the
// churn, per-volume cooldown is honoured), clean-only migration semantics,
// and a concurrent stress run (TSan'd in CI) where the balancer rebalances
// a live fleet while the multi-tenant replay verifies data integrity
// against per-trace ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = 2;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}

using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t>;
KeyTuple tup(const bc::BackrefKey& k) {
  return {k.block, k.inode, k.offset, k.length, k.line};
}

}  // namespace

TEST(Balancer, CleanOnlyMigrationAbortsOnBufferedUpdates) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  vm.open_volume("alice");
  const std::size_t home = vm.current_shard("alice");
  const std::size_t away = 1 - home;

  // Buffered updates: a clean-only move must refuse without forcing a CP.
  vm.apply("alice", {add(1), add(2)}).get();
  const bsvc::MigrationStats aborted =
      vm.migrate_volume("alice", away, /*require_clean=*/true);
  EXPECT_FALSE(aborted.moved);
  EXPECT_TRUE(aborted.aborted_dirty);
  EXPECT_EQ(vm.current_shard("alice"), home);
  EXPECT_EQ(vm.quick_stats("alice").get().ws_entries, 2u);  // still buffered
  EXPECT_EQ(vm.stats().tenants.at("alice").migrations, 0u);

  // After a CP the same move goes through, and never forces a flush.
  vm.consistency_point("alice").get();
  const bsvc::MigrationStats moved =
      vm.migrate_volume("alice", away, /*require_clean=*/true);
  EXPECT_TRUE(moved.moved);
  EXPECT_FALSE(moved.forced_cp);
  EXPECT_FALSE(moved.aborted_dirty);
  EXPECT_EQ(vm.current_shard("alice"), away);
  EXPECT_EQ(vm.query("alice", 1).get().size(), 1u);
}

namespace {

/// Drives `ops_per_tenant` foreground ops into every volume and waits for
/// them — between balancer cycles this produces identical per-volume rates,
/// making the convergence below fully deterministic.
void pulse(bsvc::VolumeManager& vm, const std::vector<std::string>& tenants,
           int ops_per_tenant, bc::BlockNo& next_block) {
  std::vector<std::future<void>> futs;
  for (const auto& t : tenants) {
    for (int i = 0; i < ops_per_tenant; ++i)
      futs.push_back(vm.apply(t, {add(next_block++)}));
  }
  for (auto& f : futs) f.get();
  for (const auto& t : tenants) vm.consistency_point(t).get();
}

}  // namespace

TEST(Balancer, ConvergesFromFullySkewedPlacement) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kTenants = 8;
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, kShards));

  std::vector<std::string> tenants;
  for (std::size_t i = 0; i < kTenants; ++i) {
    const std::string name = "vol-" + std::to_string(i);
    vm.open_volume(name);
    vm.migrate_volume(name, 0);  // worst case: everything on shard 0
    tenants.push_back(name);
  }

  bsvc::BalancerPolicy bp;
  bp.latency_weighted = false;  // pure op-count loads: deterministic
  bp.cooldown = std::chrono::seconds(10);
  bp.hysteresis = 1.5;
  bp.max_moves_per_cycle = 1;
  bp.min_load_to_act = 1;
  bsvc::Balancer balancer(vm, bp);

  // Fake clock: every cycle is one cooldown apart, so the cooldown never
  // suppresses a move here (it gets its own test below).
  std::uint64_t now = 1;
  const std::uint64_t cooldown_micros = 10'000'000;

  bc::BlockNo next_block = 1;
  pulse(vm, tenants, 10, next_block);  // prime the rate counters
  balancer.run_once(now);              // first sighting: counters, no meaning

  std::vector<double> imbalances;
  for (int cycle = 0; cycle < 2 * static_cast<int>(kTenants); ++cycle) {
    now += cooldown_micros + 1;
    pulse(vm, tenants, 10, next_block);
    const auto moves = balancer.run_once(now);
    if (moves.empty()) break;
    for (const auto& m : moves) {
      // Every accepted move strictly improves the metric.
      EXPECT_LT(m.imbalance_after, m.imbalance_before) << m.tenant;
      imbalances.push_back(m.imbalance_after);
    }
  }

  // Starting metric is 1.0 (everything on one shard); the trail must be
  // strictly decreasing and end balanced: 8 equal tenants over 4 shards
  // converge to 2+2+2+2 => imbalance 0.
  ASSERT_GE(imbalances.size(), 4u);
  double prev = 1.0;
  for (const double im : imbalances) {
    EXPECT_LT(im, prev);
    prev = im;
  }
  EXPECT_LT(imbalances.back(), 0.1);
  EXPECT_DOUBLE_EQ(balancer.last_imbalance(), imbalances.back());

  // Balanced fleet: the hysteresis band holds, nothing moves any more.
  now += cooldown_micros + 1;
  pulse(vm, tenants, 10, next_block);
  EXPECT_TRUE(balancer.run_once(now).empty());

  // Placement is actually spread: every shard hosts exactly 2 volumes.
  std::map<std::size_t, int> per_shard;
  for (const auto& p : vm.placements()) ++per_shard[p.shard];
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(per_shard[s], 2) << "shard " << s;
  }

  // No volume ever moved more than once per cooldown window.
  std::map<std::string, std::uint64_t> last_move;
  for (const auto& m : balancer.history()) {
    const auto it = last_move.find(m.tenant);
    if (it != last_move.end()) {
      EXPECT_GE(m.at_micros - it->second, cooldown_micros) << m.tenant;
    }
    last_move[m.tenant] = m.at_micros;
  }
}

TEST(Balancer, CooldownAllowsAtMostOneMovePerWindow) {
  // The clock barely advances, so the whole test sits inside one cooldown
  // window: no volume may move twice, however many cycles run. Then the
  // window expires and an ex-mover may move again.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kTenants = 8;
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, kShards));

  std::vector<std::string> tenants;
  for (std::size_t i = 0; i < kTenants; ++i) {
    const std::string name = "vol-" + std::to_string(i);
    vm.open_volume(name);
    vm.migrate_volume(name, 0);
    tenants.push_back(name);
  }

  bsvc::BalancerPolicy bp;
  bp.latency_weighted = false;
  bp.cooldown = std::chrono::hours(1);
  bp.hysteresis = 1.5;
  bp.max_moves_per_cycle = 1;
  bp.min_load_to_act = 1;
  bsvc::Balancer balancer(vm, bp);

  bc::BlockNo next_block = 1;
  std::uint64_t now = 1;
  for (int cycle = 0; cycle < 20; ++cycle) {
    pulse(vm, tenants, 10, next_block);
    balancer.run_once(++now);  // clock frozen inside the window
  }

  // Convergence needed ~6 moves; crucially every mover is distinct.
  std::set<std::string> movers;
  for (const auto& m : balancer.history()) {
    EXPECT_TRUE(movers.insert(m.tenant).second)
        << m.tenant << " moved twice inside one cooldown window";
  }
  EXPECT_GE(movers.size(), 4u);

  // Skew the load onto one non-origin shard: its volumes (all ex-movers)
  // are the only candidates. Inside the window the cooldown pins them …
  const std::size_t loaded_shard = balancer.history().front().to_shard;
  std::vector<std::string> on_loaded;
  for (const auto& p : vm.placements()) {
    if (p.shard == loaded_shard) on_loaded.push_back(p.tenant);
  }
  ASSERT_FALSE(on_loaded.empty());
  pulse(vm, on_loaded, 40, next_block);
  EXPECT_TRUE(balancer.run_once(++now).empty());

  // … and once it expires, the same skew moves one of them.
  pulse(vm, on_loaded, 40, next_block);
  const auto later = balancer.run_once(now + 2ull * 3600 * 1'000'000);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_TRUE(movers.contains(later[0].tenant));
  EXPECT_EQ(later[0].from_shard, loaded_shard);
}

TEST(Balancer, StressRebalancesALiveFleetWithoutDataLoss) {
  // TSan target: the balancer thread races feeders, maintenance and stats
  // while every volume starts on shard 0. Afterwards the fleet must be
  // spread out and every volume's live set must match its ground truth.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kTenants = 8;
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, kShards));

  bsvc::MaintenancePolicy mp;
  mp.l0_run_threshold = 8;
  mp.budget_per_sweep = 2;
  mp.poll_interval = std::chrono::milliseconds(5);
  bsvc::MaintenanceScheduler scheduler(vm, mp);

  bf::FleetOptions fo;
  fo.tenants = kTenants;
  fo.total_ops = 60000;
  fo.shape = bf::FleetShape::kHotTenant;  // skewed load on top of skewed placement
  fo.hot_share = 0.4;
  fo.seed = 99;
  fo.base.remove_fraction = 0.4;
  const auto workloads = bf::synthesize_fleet(fo);
  for (const auto& wl : workloads) {
    vm.open_volume(wl.tenant);
    vm.migrate_volume(wl.tenant, 0);
  }

  bsvc::BalancerPolicy bp;
  bp.poll_interval = std::chrono::milliseconds(5);
  bp.cooldown = std::chrono::milliseconds(50);
  bp.max_moves_per_cycle = 2;
  bp.min_load_to_act = 16;
  bsvc::Balancer balancer(vm, bp);
  balancer.start();

  bf::ReplayOptions ro;
  ro.batch_ops = 128;
  ro.ops_per_cp = 500;
  ro.query_every_ops = 100;
  const auto results = bf::replay_concurrently(vm, workloads, ro);
  balancer.stop();
  scheduler.stop();

  ASSERT_EQ(results.size(), kTenants);
  for (const auto& r : results) {
    EXPECT_EQ(r.empty_query_results, 0u) << r.tenant;
  }
  EXPECT_GT(balancer.cycles(), 0u);
  // All 8 volumes began on shard 0; a live balancer must have spread them.
  EXPECT_GE(balancer.moves(), 1u);
  std::set<std::size_t> used;
  for (const auto& p : vm.placements()) used.insert(p.shard);
  EXPECT_GT(used.size(), 1u);

  // Ground truth survived the rebalancing.
  for (const auto& wl : workloads) {
    std::set<KeyTuple> expect;
    for (const auto& k : wl.trace.live_keys) expect.insert(tup(k));
    std::set<KeyTuple> got;
    vm.with_db(wl.tenant,
               [&](bc::BacklogDb& db) {
                 for (const auto& rec : db.scan_all()) {
                   if (rec.to == bc::kInfinity) got.insert(tup(rec.key));
                 }
               })
        .get();
    EXPECT_EQ(got, expect) << wl.tenant;
  }

  // Every move respected the cooldown.
  std::map<std::string, std::uint64_t> last_move;
  for (const auto& m : balancer.history()) {
    const auto it = last_move.find(m.tenant);
    if (it != last_move.end()) {
      EXPECT_GE(m.at_micros - it->second, 50'000u) << m.tenant;
    }
    last_move[m.tenant] = m.at_micros;
  }
}
