// Per-tenant QoS: token-bucket unit tests (deterministic, explicit time),
// weighted-fair dequeue, admission edge cases (zero-rate bucket, burst == 1,
// throttle→unthrottle, kThrottled backpressure on a full wait queue), and
// the deterministic noisy-neighbor isolation test — an unthrottled hot
// tenant degrades a co-located tenant's p99 query latency, and a TenantQos
// on the hog restores isolation (asserted on ServiceStats percentiles).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = 2;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}

std::vector<bsvc::UpdateOp> batch_of(bc::BlockNo first, std::size_t n) {
  std::vector<bsvc::UpdateOp> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    batch.push_back(add(first + static_cast<bc::BlockNo>(i)));
  return batch;
}

bool is_throttled(std::future<void>& fut) {
  try {
    fut.get();
    return false;
  } catch (const bsvc::ServiceError& e) {
    return e.code() == bsvc::ErrorCode::kThrottled;
  }
}

}  // namespace

// --- TokenBucket (pure, explicit clock) --------------------------------------

TEST(TokenBucket, ZeroRateZeroBurstAdmitsNothing) {
  bsvc::TokenBucket b(0, 0, /*now=*/0);
  EXPECT_FALSE(b.try_consume(1, 0));
  EXPECT_FALSE(b.try_consume(1, 60'000'000));  // a minute later: still nothing
  EXPECT_EQ(b.micros_until(1, 0), std::numeric_limits<std::uint64_t>::max());
}

TEST(TokenBucket, ZeroRateSpendsExactlyTheBurst) {
  bsvc::TokenBucket b(0, 3, 0);
  EXPECT_TRUE(b.try_consume(1, 0));
  EXPECT_TRUE(b.try_consume(1, 0));
  EXPECT_TRUE(b.try_consume(1, 0));
  EXPECT_FALSE(b.try_consume(1, 0));
  EXPECT_FALSE(b.try_consume(1, 3600ull * 1'000'000));  // never refills
}

TEST(TokenBucket, BurstOnePacesAtExactlyTheRate) {
  // burst == 1 at 1 op/s: one op now, the next only after a full second.
  bsvc::TokenBucket b(1, 1, 0);
  EXPECT_TRUE(b.try_consume(1, 0));
  EXPECT_FALSE(b.try_consume(1, 0));
  EXPECT_FALSE(b.try_consume(1, 999'000));
  EXPECT_TRUE(b.try_consume(1, 1'000'000));
  EXPECT_FALSE(b.try_consume(1, 1'000'001));
  // micros_until reports the residual wait.
  EXPECT_NEAR(static_cast<double>(b.micros_until(1, 1'500'000)), 500'000, 2);
}

TEST(TokenBucket, BurstCapsIdleAccumulation) {
  bsvc::TokenBucket b(10, 5, 0);
  // An hour idle still yields only `burst` tokens.
  std::uint64_t now = 3600ull * 1'000'000;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(1, now));
  EXPECT_FALSE(b.try_consume(1, now));
}

TEST(TokenBucket, OversizedCostAdmitsOnFullBucketAsDebt) {
  // A batch larger than the burst must not wedge forever when the rate is
  // positive: it is admitted on a full bucket and paid off by refills.
  bsvc::TokenBucket b(100, 10, 0);
  EXPECT_TRUE(b.try_consume(50, 0));  // debt: -40
  EXPECT_FALSE(b.try_consume(1, 0));
  // 40 tokens owed + 1 wanted, at 100/s -> ~410 ms.
  EXPECT_TRUE(b.try_consume(1, 500'000));
  // With rate 0 the same oversized cost is refused outright.
  bsvc::TokenBucket z(0, 10, 0);
  EXPECT_FALSE(z.try_consume(50, 0));
}

TEST(TokenBucket, UnlimitedNeverThrottles) {
  bsvc::TokenBucket b(bsvc::kUnlimitedRate, 0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_consume(1e9, 0));
}

// --- weighted-fair dequeue ---------------------------------------------------

TEST(ShardQueue, FairDequeueInterleavesABackloggedFlow) {
  // 64 tasks of flow 1 queued first, then 8 of flow 2: strict FIFO would
  // run all of flow 1 before flow 2; weighted-fair alternates, so flow 2
  // finishes within its first ~16 pops.
  bsvc::ShardQueue q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) q.push([&order] { order.push_back(1); }, 1);
  for (int i = 0; i < 8; ++i) q.push([&order] { order.push_back(2); }, 2);
  q.close();
  while (bsvc::Task t = q.pop()) t();
  ASSERT_EQ(order.size(), 72u);
  const auto last_of_2 =
      std::find(order.rbegin(), order.rend(), 2).base() - order.begin();
  EXPECT_LE(last_of_2, 20) << "flow 2 starved behind flow 1's backlog";
}

TEST(ShardQueue, WeightSkewsTheShare) {
  // Flows 1 (weight 1) and 2 (weight 3), both with deep backlogs: among the
  // first 40 pops flow 2 should get roughly 3x flow 1's share.
  bsvc::ShardQueue q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) q.push([&order] { order.push_back(1); }, 1, 1);
  for (int i = 0; i < 64; ++i) q.push([&order] { order.push_back(2); }, 2, 3);
  q.close();
  for (int i = 0; i < 40; ++i) {
    bsvc::Task t = q.pop();
    ASSERT_TRUE(static_cast<bool>(t));
    t();
  }
  const auto ones = std::count(order.begin(), order.end(), 1);
  const auto twos = std::count(order.begin(), order.end(), 2);
  EXPECT_GE(twos, 2 * ones) << "weight-3 flow should dominate ~3:1";
  EXPECT_GE(ones, 5) << "weight-1 flow must still progress";
}

TEST(ShardQueue, PerFlowOrderIsFifo) {
  bsvc::ShardQueue q;
  std::vector<int> seq;
  for (int i = 0; i < 16; ++i) q.push([&seq, i] { seq.push_back(i); }, 7);
  for (int i = 0; i < 16; ++i) q.push([] {}, 8);
  q.close();
  while (bsvc::Task t = q.pop()) t();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(seq[i], i);
}

// --- service-level QoS edge cases --------------------------------------------

TEST(ServiceQos, ZeroRateBucketThrottlesEverythingAndBackpressures) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("frozen");

  bsvc::TenantQos qos;
  qos.ops_per_sec = 0;
  qos.burst_ops = 0;  // fully throttled: nothing is ever admitted
  qos.max_wait_queue = 4;
  vm.set_qos("frozen", qos);

  // The first 4 ops queue; the 5th is rejected with the backpressure code.
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 4; ++i)
    queued.push_back(vm.apply("frozen", {add(100 + i)}));
  auto overflow = vm.apply("frozen", {add(999)});
  EXPECT_TRUE(is_throttled(overflow));

  // Nothing ran: the volume's stats see zero updates, and the gate reports
  // the queue + the rejection.
  auto snap = vm.qos("frozen");
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.wait_depth, 4u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(vm.stats().tenants.at("frozen").updates, 0u);

  // Unthrottle: the queued ops are released in order and complete.
  vm.clear_qos("frozen");
  for (auto& f : queued) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(vm.query("frozen", 100).get().size(), 1u);
  EXPECT_EQ(vm.stats().tenants.at("frozen").updates, 4u);
  const auto stats = vm.stats().tenants.at("frozen");
  EXPECT_EQ(stats.throttle_queued, 4u);
  EXPECT_EQ(stats.throttle_rejected, 1u);
}

TEST(ServiceQos, BurstOneAdmitsOneThenPaces) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir, 1);
  so.qos_pacer_interval = std::chrono::milliseconds(1);
  bsvc::VolumeManager vm(so);
  vm.open_volume("drip");

  bsvc::TenantQos qos;
  qos.ops_per_sec = 50;  // pacer-released within the test's patience
  qos.burst_ops = 1;
  vm.set_qos("drip", qos);

  // Op 1 rides the burst; op 2 must wait for the bucket (~20 ms at 50/s).
  auto first = vm.apply("drip", {add(1)});
  EXPECT_EQ(first.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  auto second = vm.apply("drip", {add(2)});
  auto snap = vm.qos("drip");
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(snap.queued, 1u);
  EXPECT_NO_THROW(second.get());  // the pacer releases it
  EXPECT_GE(vm.qos("drip").released, 1u);
  EXPECT_EQ(vm.query("drip", 2).get().size(), 1u);
}

TEST(ServiceQos, ThrottleUnthrottleTransitionPreservesOrderAndData) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");

  // Unthrottled warm-up.
  vm.apply("alice", {add(1)}).get();

  bsvc::TenantQos qos;
  qos.ops_per_sec = 0;
  qos.burst_ops = 2;  // two batches pass, the rest queue
  qos.max_wait_queue = 1024;
  vm.set_qos("alice", qos);

  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(vm.apply("alice", {add(10 + i)}));
  // A consistency point submitted *behind* throttled updates must not jump
  // ahead of them (order under throttling), so it queues too.
  auto cp = vm.consistency_point("alice");

  vm.clear_qos("alice");
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  cp.get();
  // All 8 updates were applied, in order, before the CP committed them.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(vm.query("alice", 10 + i).get().size(), 1u) << i;
  // And the gate is inert again: fresh ops flow with no queueing.
  const auto before = vm.qos("alice").queued;
  vm.apply("alice", {add(99)}).get();
  EXPECT_EQ(vm.qos("alice").queued, before);
  EXPECT_FALSE(vm.qos("alice").enabled);
}

TEST(ServiceQos, CloseVolumeFlushesThrottledOps) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");
  bsvc::TenantQos qos;
  qos.ops_per_sec = 0;
  qos.burst_ops = 0;
  vm.set_qos("alice", qos);
  auto f1 = vm.apply("alice", {add(1)});
  auto f2 = vm.apply("alice", {add(2)});
  // close_volume releases the wait queue ahead of the teardown: the ops
  // commit (and survive reopen) instead of stranding their futures.
  vm.close_volume("alice");
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  vm.open_volume("alice");
  EXPECT_EQ(vm.query("alice", 1).get().size(), 1u);
  EXPECT_EQ(vm.query("alice", 2).get().size(), 1u);
}

TEST(ServiceQos, InvalidConfigsAreRejected) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");
  bsvc::TenantQos qos;
  qos.weight = 0;
  EXPECT_THROW(vm.set_qos("alice", qos), std::invalid_argument);
  qos = {};
  qos.ops_per_sec = -1;
  EXPECT_THROW(vm.set_qos("alice", qos), std::invalid_argument);
  qos = {};
  qos.max_wait_queue = 0;
  EXPECT_THROW(vm.set_qos("alice", qos), std::invalid_argument);
  EXPECT_THROW(vm.set_qos("nobody", {}), std::invalid_argument);
}

// --- batched verbs through the gate ------------------------------------------

TEST(ServiceQos, ApplyBatchIsChargedOnceAndRejectedAtomically) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("frozen");

  bsvc::TenantQos qos;
  qos.ops_per_sec = 0;
  qos.burst_ops = 0;   // fully throttled: nothing is ever admitted
  qos.max_wait_queue = 1;
  vm.set_qos("frozen", qos);

  // Batch 1 queues as ONE waiter (one gate charge for its 8 ops); batch 2
  // overflows the depth-1 wait queue and is rejected as one unit: its
  // future carries kThrottled exactly once and none of its ops is ever
  // admitted, half-applied or retried by the service.
  auto queued = vm.apply_batch("frozen", batch_of(100, 8));
  auto rejected = vm.apply_batch("frozen", batch_of(200, 8));
  EXPECT_TRUE(is_throttled(rejected));

  auto snap = vm.qos("frozen");
  EXPECT_EQ(snap.wait_depth, 1u);  // the whole batch is one waiter
  EXPECT_EQ(snap.queued, 1u);
  EXPECT_EQ(snap.rejected, 1u);  // one rejection event for the whole batch
  EXPECT_EQ(vm.stats().tenants.at("frozen").updates, 0u);

  // Release: the queued batch applies completely; the rejected one left no
  // trace (no op from the 200-block range), and a retry succeeds.
  vm.clear_qos("frozen");
  EXPECT_NO_THROW(queued.get());
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(vm.query("frozen", 100 + i).get().size(), 1u) << i;
  EXPECT_TRUE(vm.query("frozen", 200).get().empty());
  EXPECT_NO_THROW(vm.apply_batch("frozen", batch_of(200, 8)).get());
  EXPECT_EQ(vm.stats().tenants.at("frozen").updates, 16u);
}

TEST(ServiceQos, ApplyBatchQueuesBehindThrottledSinglesInOrder) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");

  bsvc::TenantQos qos;
  qos.ops_per_sec = 0;
  qos.burst_ops = 1;  // the first single rides the burst, the rest queue
  qos.max_wait_queue = 1024;
  vm.set_qos("alice", qos);

  auto s1 = vm.apply("alice", {add(1)});
  auto s2 = vm.apply("alice", {add(2)});
  auto b = vm.apply_batch("alice", {add(3), add(4)});
  // A CP submitted behind the throttled batch must not jump ahead of it:
  // when it completes, every earlier update is committed.
  auto cp = vm.consistency_point("alice");

  vm.clear_qos("alice");
  EXPECT_NO_THROW(s1.get());
  EXPECT_NO_THROW(s2.get());
  EXPECT_NO_THROW(b.get());
  cp.get();
  for (int blk = 1; blk <= 4; ++blk)
    EXPECT_EQ(vm.query("alice", blk).get().size(), 1u) << blk;
}

// --- fleet shapes ------------------------------------------------------------

TEST(FleetShapes, SynthesisSplitsTheBudgetPerShape) {
  bf::FleetOptions fo;
  fo.tenants = 3;
  fo.total_ops = 3000;
  const auto uniform = bf::synthesize_fleet(fo);
  ASSERT_EQ(uniform.size(), 3u);
  for (const auto& wl : uniform) {
    EXPECT_EQ(wl.trace.ops.size(), 1000u);
    EXPECT_EQ(wl.pause_every_ops, 0u);  // uniform fleets don't pace
  }
  EXPECT_EQ(uniform[0].tenant, "tenant-000");

  fo.shape = bf::FleetShape::kHotTenant;
  fo.hot_share = 0.5;
  const auto hot = bf::synthesize_fleet(fo);
  EXPECT_EQ(hot[0].trace.ops.size(), 1500u);  // the hog gets hot_share
  EXPECT_EQ(hot[1].trace.ops.size(), 750u);
  EXPECT_EQ(hot[2].trace.ops.size(), 750u);

  fo.shape = bf::FleetShape::kBursty;
  fo.burst_ops = 128;
  fo.burst_pause = std::chrono::microseconds(500);
  const auto bursty = bf::synthesize_fleet(fo);
  for (const auto& wl : bursty) {
    EXPECT_EQ(wl.trace.ops.size(), 1000u);
    EXPECT_EQ(wl.pause_every_ops, 128u);
    EXPECT_EQ(wl.pause, std::chrono::microseconds(500));
  }

  fo.hot_share = 1.5;
  fo.shape = bf::FleetShape::kHotTenant;
  EXPECT_THROW(bf::synthesize_fleet(fo), std::invalid_argument);
}

TEST(FleetShapes, BurstyReplayPreservesGroundTruth) {
  // Exercises the feeder's burst-pacing path end to end: the idle gaps
  // shape arrival times only, never the data.
  using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                              std::uint64_t, std::uint64_t>;
  const auto tup = [](const bc::BackrefKey& k) {
    return KeyTuple{k.block, k.inode, k.offset, k.length, k.line};
  };

  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  bf::FleetOptions fo;
  fo.tenants = 3;
  fo.total_ops = 6000;
  fo.shape = bf::FleetShape::kBursty;
  fo.burst_ops = 256;
  fo.burst_pause = std::chrono::microseconds(300);
  fo.seed = 5;
  const auto workloads = bf::synthesize_fleet(fo);
  for (const auto& wl : workloads) vm.open_volume(wl.tenant);

  bf::ReplayOptions ro;
  ro.batch_ops = 64;
  ro.ops_per_cp = 500;
  const auto results = bf::replay_concurrently(vm, workloads, ro);
  ASSERT_EQ(results.size(), workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(results[i].ops, workloads[i].trace.ops.size());
  }
  for (const auto& wl : workloads) {
    std::set<KeyTuple> expect;
    for (const auto& k : wl.trace.live_keys) expect.insert(tup(k));
    std::set<KeyTuple> got;
    vm.with_db(wl.tenant,
               [&](bc::BacklogDb& db) {
                 for (const auto& rec : db.scan_all()) {
                   if (rec.to == bc::kInfinity) got.insert(tup(rec.key));
                 }
               })
        .get();
    EXPECT_EQ(got, expect) << wl.tenant;
  }
}

// --- the noisy-neighbor isolation test ---------------------------------------

namespace {

/// Victim p99 while the hog floods the (single) shard with update batches
/// *and their consistency points* — the CPs write run files, so each hog
/// task occupies the shard for real time, not just a write-store append.
std::uint64_t victim_p99_under_flood(bsvc::VolumeManager& vm,
                                     bc::BlockNo hog_base) {
  constexpr int kHogWindows = 24;
  constexpr std::size_t kHogBatchOps = 16384;
  constexpr int kVictimQueries = 100;

  // Async flood: the hog's backlog sits queued while the victim works.
  std::vector<std::future<void>> flood;
  std::vector<std::future<bc::CpFlushStats>> cps;
  flood.reserve(kHogWindows);
  cps.reserve(kHogWindows);
  for (int i = 0; i < kHogWindows; ++i) {
    flood.push_back(vm.apply(
        "hog", batch_of(hog_base + static_cast<bc::BlockNo>(i) * kHogBatchOps,
                        kHogBatchOps)));
    cps.push_back(vm.consistency_point("hog"));
  }
  // Sync on the second CP window before sampling. Unthrottled that's
  // moments into a ~94-window-deep flood; throttled it waits out exactly
  // the admitted burst, so the victim measures an idle shard, not the tail
  // of the burst draining.
  flood[1].wait();
  cps[1].wait();
  for (int i = 0; i < kVictimQueries; ++i) {
    vm.query("victim", 1).get();  // sequential: each waits its real latency
  }
  // Lift the throttle (no-op in the unthrottled run) so the queued tail of
  // the flood drains at shard speed instead of token speed — the sampling
  // window above is over, and waiting out a 2k-ops/s trickle here would
  // only slow the suite.
  vm.clear_qos("hog");
  const auto swallow_throttled = [](auto& futures) {
    for (auto& f : futures) {
      try {
        f.get();
      } catch (const bsvc::ServiceError&) {
        // Throttled-run floods may be rejected once the wait queue fills —
        // that *is* the backpressure under test.
      }
    }
  };
  swallow_throttled(flood);
  swallow_throttled(cps);
  // ServiceStats' queue-wait percentile is the isolation metric: a query's
  // on-shard execution is microseconds either way; what the hog inflates is
  // the wait for the shard.
  return vm.stats().tenants.at("victim").queue_wait_micros.quantile_micros(
      0.99);
}

}  // namespace

TEST(ServiceQos, NoisyNeighborDegradesVictimAndQosRestoresIsolation) {
  // Run A — no QoS: the hog's 1024-op batches occupy the only shard, so
  // every victim query waits behind whichever batch is executing
  // (weighted-fair protects against *queue* monopolization, not against a
  // long task in flight). Run B — same flood, hog throttled: the shard is
  // mostly idle and the victim sees its baseline latency.
  bs::TempDir dir_a;
  std::uint64_t p99_unthrottled = 0;
  {
    bsvc::VolumeManager vm(service_options(dir_a, 1));
    vm.open_volume("hog");
    vm.open_volume("victim");
    vm.apply("victim", {add(1)}).get();
    vm.consistency_point("victim").get();
    p99_unthrottled = victim_p99_under_flood(vm, 1000);
  }

  bs::TempDir dir_b;
  std::uint64_t p99_throttled = 0;
  std::uint64_t hog_throttle_events = 0;
  {
    bsvc::VolumeManager vm(service_options(dir_b, 1));
    vm.open_volume("hog");
    vm.open_volume("victim");
    vm.apply("victim", {add(1)}).get();
    vm.consistency_point("victim").get();
    bsvc::TenantQos qos;
    qos.ops_per_sec = 2000;   // a trickle next to the ~400k-op flood
    qos.burst_ops = 32768;    // exactly two 16k batches ride the burst
    qos.max_wait_queue = 8;   // small: the flood must hit backpressure
    vm.set_qos("hog", qos);
    p99_throttled = victim_p99_under_flood(vm, 1000);
    const auto hog_stats = vm.stats().tenants.at("hog");
    hog_throttle_events =
        hog_stats.throttle_queued + hog_stats.throttle_rejected;
  }

  // The hog visibly degraded the victim, QoS visibly restored it, and the
  // hog actually hit the brakes. Conservative 2x margin over a floored
  // baseline keeps this deterministic on slow CI hosts.
  EXPECT_GT(p99_unthrottled, 2 * std::max<std::uint64_t>(p99_throttled, 8))
      << "unthrottled " << p99_unthrottled << "us vs throttled "
      << p99_throttled << "us";
  EXPECT_GT(hog_throttle_events, 0u);
}
