// Copy-on-write clone_volume: sharing, refcount GC, crash and fault
// injection, and a TSan'd stress suite.
//
// The invariants under test, after *any* interleaving of clone / delete /
// destroy / compaction — including a process kill between the clone's two
// durability points (FILEREFS refcount persist and the staging->dst commit
// rename, in either order) and injected link/copy failures mid-clone:
//
//   * no leaks: every file on disk belongs to some volume's live manifest
//     (per volume: on-disk set == BacklogDb::live_files), and no `.cloning`
//     staging directory survives recovery;
//   * no dangles: every volume (source, clone, clone-of-clone) still serves
//     its full record state after any sharer compacts, deletes or dies;
//   * exact refcounts: the shared FileManifest equals a naive recount of
//     run-file names across the volume directories.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/hash.hpp"

namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace fs = std::filesystem;

#if defined(__SANITIZE_THREAD__)
#define BACKLOG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BACKLOG_TSAN 1
#endif
#endif

namespace {

bsvc::ServiceOptions service_options(const fs::path& root,
                                     std::size_t shards = 2) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = root;
  o.db_options.expected_ops_per_cp = 512;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) { return {bsvc::UpdateOp::Kind::kAdd, key(b)}; }
bsvc::UpdateOp rm(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kRemove, key(b)};
}

/// Seeds `tenant` with blocks [first, first+count) over several consistency
/// points, so the volume holds multiple run files worth sharing.
void seed_volume(bsvc::VolumeManager& vm, const std::string& tenant,
                 bc::BlockNo first, std::uint64_t count, int cps = 4) {
  const std::uint64_t per_cp = count / cps;
  bc::BlockNo b = first;
  for (int i = 0; i < cps; ++i) {
    std::vector<bsvc::UpdateOp> batch;
    const std::uint64_t n = (i == cps - 1) ? (first + count - b) : per_cp;
    for (std::uint64_t j = 0; j < n; ++j) batch.push_back(add(b++));
    vm.apply(tenant, std::move(batch)).get();
    vm.consistency_point(tenant).get();
  }
}

using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t>;
KeyTuple tup(const bc::BackrefKey& k) {
  return {k.block, k.inode, k.offset, k.length, k.line};
}

std::uint64_t key_checksum(const bc::BackrefKey& k) {
  std::uint8_t buf[bc::kKeySize];
  bc::encode_key(k, buf);
  return backlog::util::hash_bytes(buf, sizeof buf, /*seed=*/0x6d69);
}

/// Joined record state of a volume, for whole-volume equality checks.
std::set<std::string> scan_strings(bsvc::VolumeManager& vm,
                                   const std::string& tenant) {
  std::set<std::string> out;
  vm.with_db(tenant,
             [&](bc::BacklogDb& db) {
               for (const auto& r : db.scan_all()) out.insert(bc::to_string(r));
             })
      .get();
  return out;
}

/// The leak/dangle/refcount invariant sweep. For every open tenant, the
/// live-manifest set and the directory listing are captured inside one
/// shard task (nothing of that volume's can interleave); the shared
/// FileManifest must then equal a naive recount of run names across the
/// directories.
void expect_cow_invariants(bsvc::VolumeManager& vm, const fs::path& root,
                           const std::vector<std::string>& tenants) {
  std::map<std::string, std::uint32_t> holders;
  for (const std::string& t : tenants) {
    std::set<std::string> live, on_disk;
    const fs::path dir = root / t;
    vm.with_db(t,
               [&](bc::BacklogDb& db) {
                 for (const auto& f : db.live_files()) live.insert(f);
                 for (const auto& de : fs::directory_iterator(dir)) {
                   if (de.is_regular_file())
                     on_disk.insert(de.path().filename().string());
                 }
               })
        .get();
    EXPECT_EQ(on_disk, live) << "leaked or missing files in " << t;
    for (const auto& f : live) {
      if (f.ends_with(".run")) ++holders[f];
    }
  }
  std::map<std::string, std::uint32_t> want;
  for (const auto& [name, n] : holders) {
    if (n >= 2) want.emplace(name, n);
  }
  std::map<std::string, std::uint32_t> got;
  for (const auto& [name, e] : vm.shared_files().snapshot()) {
    got.emplace(name, e.refcount);
  }
  EXPECT_EQ(got, want) << "FILEREFS disagrees with the naive recount";

  // No stray directories either: the root holds exactly the open volumes
  // (and never a `.cloning` staging leftover).
  std::set<std::string> dirs, expect_dirs(tenants.begin(), tenants.end());
  for (const auto& de : fs::directory_iterator(root)) {
    if (de.is_directory()) dirs.insert(de.path().filename().string());
  }
  EXPECT_EQ(dirs, expect_dirs);
}

}  // namespace

TEST(ServiceCloneCow, CloneSharesRunFilesWithoutCopyingData) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir.path()));
  vm.open_volume("alpha");
  seed_volume(vm, "alpha", 1, 256);
  const bc::Epoch snap = vm.take_snapshot("alpha").get();

  const auto before = scan_strings(vm, "alpha");
  const bc::LineId line = vm.clone_volume("alpha", "beta", 0, snap);
  EXPECT_GT(line, 0u);

  // The clone's record state is byte-identical (it *is* the same files).
  EXPECT_EQ(scan_strings(vm, "beta"), before);

  // Run files are hard links, not copies: two directory entries, one inode.
  const auto refs = vm.shared_files().snapshot();
  ASSERT_FALSE(refs.empty());
  for (const auto& [name, e] : refs) {
    EXPECT_EQ(e.refcount, 2u) << name;
    EXPECT_EQ(fs::hard_link_count(dir.path() / "beta" / name), 2u) << name;
    EXPECT_TRUE(fs::exists(dir.path() / "alpha" / name)) << name;
  }

  // Ownership gauges: both sides report the linked bytes as shared.
  const bsvc::ServiceStats stats = vm.stats();
  EXPECT_GT(stats.tenants.at("alpha").shared_bytes, 0u);
  EXPECT_EQ(stats.tenants.at("alpha").shared_bytes,
            stats.tenants.at("beta").shared_bytes);
  EXPECT_GT(stats.tenants.at("beta").owned_bytes, 0u);  // its copied manifest

  // Writes diverge: the clone's new runs are its own, the source never
  // sees them.
  vm.apply("beta", {add(10000)}).get();
  vm.consistency_point("beta").get();
  EXPECT_FALSE(vm.query("beta", 10000).get().empty());
  EXPECT_TRUE(vm.query("alpha", 10000).get().empty());
  EXPECT_EQ(scan_strings(vm, "alpha"), before);

  expect_cow_invariants(vm, dir.path(), {"alpha", "beta"});
}

TEST(ServiceCloneCow, CloneChainsShareTransitivelyAndCompactionUnshares) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir.path()));
  vm.open_volume("alpha");
  seed_volume(vm, "alpha", 1, 192);
  const bc::Epoch snap = vm.take_snapshot("alpha").get();

  // Depth-3 chain, every clone taken *from the previous clone* (its copied
  // registry retains (0, snap), so the same snapshot anchors every hop).
  const std::vector<std::string> chain = {"alpha", "b1", "b2", "b3"};
  for (std::size_t i = 1; i < chain.size(); ++i) {
    vm.clone_volume(chain[i - 1], chain[i], 0, snap);
  }
  // Every original run is now held by all four directories.
  const auto refs = vm.shared_files().snapshot();
  ASSERT_FALSE(refs.empty());
  bool saw_four = false;
  for (const auto& [name, e] : refs) saw_four |= e.refcount == 4;
  EXPECT_TRUE(saw_four);
  expect_cow_invariants(vm, dir.path(), chain);

  // Compaction un-shares: each maintain() rewrites that volume's runs into
  // fresh (tagged, sole-owned) files and releases its links. No sharer may
  // dangle at any point.
  const auto want = scan_strings(vm, "alpha");
  for (const std::string& t : chain) {
    vm.maintain(t).get();
    for (const std::string& u : chain) {
      EXPECT_EQ(scan_strings(vm, u), want) << u << " after maintaining " << t;
    }
  }
  // All four rewrote their files: nothing is shared any more, and the
  // refcount table says so.
  EXPECT_TRUE(vm.shared_files().snapshot().empty());
  expect_cow_invariants(vm, dir.path(), chain);
}

TEST(ServiceCloneCow, DestroyReleasesOnlyItsOwnReferences) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir.path()));
  vm.open_volume("alpha");
  seed_volume(vm, "alpha", 1, 128);
  const bc::Epoch snap = vm.take_snapshot("alpha").get();
  vm.clone_volume("alpha", "beta", 0, snap);
  vm.clone_volume("alpha", "gamma", 0, snap);

  const auto want = scan_strings(vm, "alpha");
  for (const auto& [name, e] : vm.shared_files().snapshot()) {
    EXPECT_EQ(e.refcount, 3u) << name;
  }

  // Destroying the *source* must not touch the clones: they hold links.
  vm.destroy_volume("alpha");
  EXPECT_FALSE(fs::exists(dir.path() / "alpha"));
  EXPECT_EQ(scan_strings(vm, "beta"), want);
  EXPECT_EQ(scan_strings(vm, "gamma"), want);
  for (const auto& [name, e] : vm.shared_files().snapshot()) {
    EXPECT_EQ(e.refcount, 2u) << name;
  }
  expect_cow_invariants(vm, dir.path(), {"beta", "gamma"});

  vm.destroy_volume("beta");
  EXPECT_EQ(scan_strings(vm, "gamma"), want);
  EXPECT_TRUE(vm.shared_files().snapshot().empty());  // gamma sole-owns
  expect_cow_invariants(vm, dir.path(), {"gamma"});

  vm.destroy_volume("gamma");
  expect_cow_invariants(vm, dir.path(), {});
}

TEST(ServiceCloneCow, LegacyFullCopyModeSharesNothing) {
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir.path());
  so.cow_clone = false;
  bsvc::VolumeManager vm(so);
  vm.open_volume("alpha");
  seed_volume(vm, "alpha", 1, 128);
  const bc::Epoch snap = vm.take_snapshot("alpha").get();
  const auto want = scan_strings(vm, "alpha");
  vm.clone_volume("alpha", "beta", 0, snap);
  EXPECT_EQ(scan_strings(vm, "beta"), want);
  EXPECT_TRUE(vm.shared_files().snapshot().empty());
  for (const auto& de : fs::directory_iterator(dir.path() / "beta")) {
    EXPECT_EQ(fs::hard_link_count(de.path()), 1u) << de.path();
  }
  // A service restart recounts FILEREFS from the directories; the copied
  // clone duplicates run *names* across two dirs, but rebuild() verifies
  // sharing by inode identity and must not invent refcounts for copies.
  {
    bsvc::VolumeManager reopened(so);
    EXPECT_TRUE(reopened.shared_files().snapshot().empty());
  }
  // No refcount recount here: a byte copy duplicates *names* without
  // sharing, so only the per-volume leak check applies in legacy mode.
  for (const char* t : {"alpha", "beta"}) {
    std::set<std::string> live, on_disk;
    const fs::path vdir = dir.path() / t;
    vm.with_db(t,
               [&](bc::BacklogDb& db) {
                 for (const auto& f : db.live_files()) live.insert(f);
                 for (const auto& de : fs::directory_iterator(vdir)) {
                   if (de.is_regular_file())
                     on_disk.insert(de.path().filename().string());
                 }
               })
        .get();
    EXPECT_EQ(on_disk, live) << t;
  }
}

TEST(ServiceCloneCow, FaultInjectedLinkFailureReleasesAndRecovers) {
  bs::TempDir dir;
  // Fails exactly one link/copy op: the (fail_at)-th call of the given kind.
  std::atomic<int> fail_link_at{-1}, fail_copy_at{-1};
  std::atomic<int> links_seen{0}, copies_seen{0};
  bsvc::ServiceOptions so = service_options(dir.path());
  so.env_fault_hook = [&](std::string_view op, const std::string& name) {
    if (op == "link" &&
        links_seen.fetch_add(1) == fail_link_at.load(std::memory_order_relaxed))
      throw std::runtime_error("injected link fault: " + name);
    if (op == "copy" &&
        copies_seen.fetch_add(1) == fail_copy_at.load(std::memory_order_relaxed))
      throw std::runtime_error("injected copy fault: " + name);
  };
  bsvc::VolumeManager vm(so);
  vm.open_volume("alpha");
  seed_volume(vm, "alpha", 1, 192);
  const bc::Epoch snap = vm.take_snapshot("alpha").get();
  const auto want = scan_strings(vm, "alpha");

  // Fail mid-link run: some references were already taken and must be
  // stepped back with the staged links.
  fail_link_at.store(2);
  EXPECT_THROW(vm.clone_volume("alpha", "beta", 0, snap), std::runtime_error);
  fail_link_at.store(-1);
  EXPECT_FALSE(fs::exists(dir.path() / "beta"));
  EXPECT_FALSE(fs::exists(dir.path() / "beta.cloning"));
  EXPECT_TRUE(vm.shared_files().snapshot().empty());
  EXPECT_FALSE(vm.has_volume("beta"));
  expect_cow_invariants(vm, dir.path(), {"alpha"});

  // Fail the metadata copy (the manifest copies before any run links).
  fail_copy_at.store(static_cast<int>(copies_seen.load()));
  EXPECT_THROW(vm.clone_volume("alpha", "beta", 0, snap), std::runtime_error);
  fail_copy_at.store(-1);
  EXPECT_FALSE(fs::exists(dir.path() / "beta.cloning"));
  EXPECT_TRUE(vm.shared_files().snapshot().empty());
  expect_cow_invariants(vm, dir.path(), {"alpha"});

  // With the faults cleared, the same clone succeeds end to end.
  vm.clone_volume("alpha", "beta", 0, snap);
  EXPECT_EQ(scan_strings(vm, "beta"), want);
  expect_cow_invariants(vm, dir.path(), {"alpha", "beta"});
}

// --- crash injection ---------------------------------------------------------

namespace {

/// Kills a clone at `point` (in the persist order selected by `refs_last`)
/// by _exit()ing a forked child mid-commit, then verifies recovery: the
/// staging directory is gone, refcounts match the naive recount, no file is
/// leaked or dangling, and a retry of the same clone succeeds.
void run_crash_case(const char* point, bool refs_last) {
  SCOPED_TRACE(std::string("crash at ") + point +
               (refs_last ? " (refs persisted last)" : " (refs persisted first)"));
  bs::TempDir dir;
  bc::Epoch snap = 0;
  std::set<std::string> want_alpha;
  {
    bsvc::VolumeManager vm(service_options(dir.path()));
    vm.open_volume("alpha");
    seed_volume(vm, "alpha", 1, 192);
    snap = vm.take_snapshot("alpha").get();
    want_alpha = scan_strings(vm, "alpha");
  }  // joined: the process is single-threaded again, safe to fork

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: rebuild the service with a checkpoint hook that kills the
    // process at the chosen durability point. _exit skips destructors —
    // exactly a crash, minus the kernel's page cache (which a same-host
    // restart shares anyway).
    bsvc::ServiceOptions so = service_options(dir.path());
    so.clone_persist_refs_last = refs_last;
    const std::string target = point;
    so.clone_checkpoint = [target](std::string_view p) {
      if (p == target) ::_exit(0);
    };
    try {
      bsvc::VolumeManager vm(so);
      vm.open_volume("alpha");
      vm.clone_volume("alpha", "beta", 0, snap);
    } catch (...) {
      ::_exit(18);
    }
    ::_exit(17);  // the checkpoint never fired — test bug
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child did not die at the checkpoint";

  // What the crash must have left behind, before recovery runs.
  const bool committed = std::string(point) == "registry_persisted";
  EXPECT_EQ(fs::exists(dir.path() / "beta"), committed);
  EXPECT_NE(fs::exists(dir.path() / "beta.cloning"), committed);
  if (std::string(point) == "refs_persisted" && !refs_last) {
    // The refcount table was persisted ahead of the directory commit.
    EXPECT_GT(fs::file_size(dir.path() / "FILEREFS"), 0u);
  }

  // Recovery: constructing the service removes staging leftovers and
  // recounts the refcount table from the committed directories.
  bsvc::VolumeManager vm(service_options(dir.path()));
  EXPECT_FALSE(fs::exists(dir.path() / "beta.cloning"));
  vm.open_volume("alpha");
  std::vector<std::string> tenants = {"alpha"};
  if (committed) {
    // The clone committed: it recovers as a complete volume with the full
    // shared record state (only the extra writable line, which is created
    // and persisted after the commit, may be missing).
    vm.open_volume("beta");
    tenants.push_back("beta");
    EXPECT_EQ(scan_strings(vm, "beta"), want_alpha);
  }
  EXPECT_EQ(scan_strings(vm, "alpha"), want_alpha);
  expect_cow_invariants(vm, dir.path(), tenants);

  // The same clone (fresh name) succeeds after recovery.
  vm.clone_volume("alpha", "gamma", 0, snap);
  tenants.push_back("gamma");
  EXPECT_EQ(scan_strings(vm, "gamma"), want_alpha);
  expect_cow_invariants(vm, dir.path(), tenants);
}

}  // namespace

TEST(ServiceCloneCowCrash, KillBetweenRefcountAndRegistryPersistBothOrders) {
#ifdef BACKLOG_TSAN
  GTEST_SKIP() << "fork-based crash injection is not run under TSan";
#else
  // Default order: refcounts persist first, the directory rename commits.
  run_crash_case("files_staged", /*refs_last=*/false);
  if (HasFatalFailure()) return;
  run_crash_case("refs_persisted", /*refs_last=*/false);
  if (HasFatalFailure()) return;
  // Flipped order: the directory commits first, refcounts persist after —
  // recovery must reconcile a committed clone the table knows nothing of.
  run_crash_case("files_staged", /*refs_last=*/true);
  if (HasFatalFailure()) return;
  run_crash_case("registry_persisted", /*refs_last=*/true);
#endif
}

// --- TSan stress -------------------------------------------------------------

TEST(ServiceCloneCowStress, ClonesRaceWritesCompactionDeletesAndMigration) {
  constexpr int kClones = 10;
  constexpr bc::BlockNo kSeeded = 96;
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir.path(), 3));
  bsvc::MaintenancePolicy mp;
  mp.l0_run_threshold = 4;
  mp.budget_per_sweep = 2;
  mp.poll_interval = std::chrono::milliseconds(2);
  bsvc::MaintenanceScheduler scheduler(vm, mp);

  vm.open_volume("src");
  seed_volume(vm, "src", 1, kSeeded);
  const bc::Epoch snap = vm.take_snapshot("src").get();

  // The autonomous balancer runs underneath everything: its clean-only
  // migrations race the clones exactly as in production.
  bsvc::BalancerPolicy bp;
  bp.poll_interval = std::chrono::milliseconds(2);
  bp.cooldown = std::chrono::milliseconds(10);
  bp.min_load_to_act = 2;
  bp.max_moves_per_cycle = 2;
  bsvc::Balancer balancer(vm, bp);
  balancer.start();

  std::atomic<bool> stop{false};

  // Writer: the only thread mutating src's records, so its bookkeeping is
  // the exact expected live set (per-volume op checksum at the end).
  std::set<KeyTuple> live;
  std::uint64_t live_checksum = 0;
  for (bc::BlockNo b = 1; b <= kSeeded; ++b) {
    live.insert(tup(key(b)));
    live_checksum ^= key_checksum(key(b));
  }
  std::thread writer([&] {
    bc::BlockNo next = 100000;
    std::vector<bc::BlockNo> removable;
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const bc::BlockNo fresh = next++;
      vm.apply("src", {add(fresh)}).get();
      live.insert(tup(key(fresh)));
      live_checksum ^= key_checksum(key(fresh));
      removable.push_back(fresh);
      if (n % 3 == 2 && removable.size() > 4) {
        const bc::BlockNo victim = removable.front();
        removable.erase(removable.begin());
        vm.apply("src", {rm(victim)}).get();
        live.erase(tup(key(victim)));
        live_checksum ^= key_checksum(key(victim));
      }
      if (++n % 40 == 0) vm.consistency_point("src").get();
    }
  });

  // Snapshot churn: retained versions come and go under the clones' feet
  // (never touching the anchor snapshot the clones branch from).
  std::thread snapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      try {
        const bc::Epoch v = vm.take_snapshot("src").get();
        vm.delete_snapshot("src", 0, v).get();
      } catch (const std::exception&) {
        // Racing a migration handoff — retry next round.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Balancer-style migration churn on the shared source volume.
  std::thread migrator([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      try {
        vm.migrate_volume("src", ++i % 3);
      } catch (const std::logic_error&) {
        // Handoff already in flight.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Main thread: a clone-of-clone chain racing all of the above; every
  // other clone is destroyed immediately (release + GC under fire).
  std::string prev = "src";
  for (int i = 0; i < kClones; ++i) {
    const std::string name = "c" + std::to_string(i);
    vm.clone_volume(prev, name, 0, snap);
    // The anchor snapshot's content must be visible in every clone.
    for (const bc::BlockNo b : {bc::BlockNo{1}, kSeeded / 2, kSeeded}) {
      ASSERT_FALSE(vm.query(name, b).get().empty())
          << name << " lost block " << b;
    }
    if (i % 2 == 1) {
      vm.destroy_volume(name);
    } else {
      prev = name;
    }
  }

  stop.store(true, std::memory_order_release);
  writer.join();
  snapper.join();
  migrator.join();
  balancer.stop();
  scheduler.stop();

  // Quiesce: flush and fully compact every surviving volume so the final
  // sweep races nothing (a queued background probe re-checks thresholds and
  // skips a just-maintained volume).
  std::vector<std::string> tenants = vm.tenants();
  std::sort(tenants.begin(), tenants.end());
  for (const std::string& t : tenants) {
    vm.consistency_point(t).get();
    vm.maintain(t).get();
  }

  // src's live records equal the writer's bookkeeping exactly.
  std::set<KeyTuple> got;
  std::uint64_t got_checksum = 0;
  vm.with_db("src",
             [&](bc::BacklogDb& db) {
               for (const auto& rec : db.scan_all()) {
                 if (rec.to != bc::kInfinity) continue;
                 got.insert(tup(rec.key));
                 got_checksum ^= key_checksum(rec.key);
               }
             })
      .get();
  EXPECT_EQ(got.size(), live.size());
  EXPECT_EQ(got_checksum, live_checksum);
  EXPECT_EQ(got, live);

  // And the global CoW invariants hold: no leaks, no dangles, exact refs.
  expect_cow_invariants(vm, dir.path(), tenants);
}
