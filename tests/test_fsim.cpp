// Tests of the write-anywhere file-system simulator itself.
#include <gtest/gtest.h>

#include "fsim/fsim.hpp"
#include "fsim/verifier.hpp"
#include "storage/env.hpp"

namespace bf = backlog::fsim;
namespace bc = backlog::core;
namespace bs = backlog::storage;

namespace {
bf::FsimOptions small_opts() {
  bf::FsimOptions o;
  o.ops_per_cp = 1000000;  // manual CPs in most tests
  o.dedup_fraction = 0;    // deterministic unless a test enables it
  return o;
}
}  // namespace

TEST(Fsim, CreateWriteDeleteLifecycle) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 4);
  EXPECT_TRUE(fs.file_exists(0, ino));
  EXPECT_EQ(fs.file_size_blocks(0, ino), 4u);
  EXPECT_EQ(fs.stats().allocated_blocks, 4u);

  fs.write_file(0, ino, 1, 2);  // CoW of blocks 1-2
  EXPECT_EQ(fs.stats().allocated_blocks, 4u);  // old freed, new allocated
  EXPECT_EQ(fs.stats().block_writes, 6u);
  EXPECT_EQ(fs.stats().block_frees, 2u);

  fs.delete_file(0, ino);
  EXPECT_FALSE(fs.file_exists(0, ino));
  EXPECT_EQ(fs.stats().allocated_blocks, 0u);
}

TEST(Fsim, WriteExtendsFile) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 2);
  fs.write_file(0, ino, 5, 3);  // creates a hole at [2,5)
  EXPECT_EQ(fs.file_size_blocks(0, ino), 8u);
  EXPECT_EQ(fs.stats().allocated_blocks, 5u);  // 2 original + 3 written
}

TEST(Fsim, TruncateFreesTail) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 8);
  fs.truncate_file(0, ino, 3);
  EXPECT_EQ(fs.file_size_blocks(0, ino), 3u);
  EXPECT_EQ(fs.stats().allocated_blocks, 3u);
  // Truncate past EOF is a no-op.
  fs.truncate_file(0, ino, 10);
  EXPECT_EQ(fs.file_size_blocks(0, ino), 3u);
}

TEST(Fsim, FreedBlocksAreReused) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto a = fs.create_file(0, 4);
  const auto high_water = fs.max_block();
  fs.delete_file(0, a);
  fs.create_file(0, 4);
  EXPECT_EQ(fs.max_block(), high_water) << "allocator must reuse freed blocks";
}

TEST(Fsim, SnapshotKeepsBlocksAlive) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 4);
  const auto snap = fs.take_snapshot(0);
  fs.consistency_point();
  fs.delete_file(0, ino);
  // Blocks still referenced by the snapshot image.
  EXPECT_EQ(fs.stats().allocated_blocks, 4u);
  fs.delete_snapshot(0, snap);
  EXPECT_EQ(fs.stats().allocated_blocks, 0u);
}

TEST(Fsim, CloneSharesThenDiverges) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 4);
  const auto snap = fs.take_snapshot(0);
  fs.consistency_point();
  const auto clone = fs.create_clone(0, snap);
  EXPECT_EQ(fs.stats().allocated_blocks, 4u);  // fully shared
  fs.write_file(clone, ino, 0, 1);             // CoW in the clone
  EXPECT_EQ(fs.stats().allocated_blocks, 5u);  // one block diverged
  // Parent unchanged.
  EXPECT_EQ(fs.live_image(0).at(ino)->blocks[0],
            fs.snapshot_images(0).at(snap).at(ino)->blocks[0]);
  EXPECT_NE(fs.live_image(clone).at(ino)->blocks[0],
            fs.live_image(0).at(ino)->blocks[0]);
}

TEST(Fsim, DeleteCloneHeadReleasesBlocks) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  fs.create_file(0, 4);
  const auto snap = fs.take_snapshot(0);
  fs.consistency_point();
  const auto clone = fs.create_clone(0, snap);
  fs.consistency_point();
  fs.delete_clone_head(clone);
  // 4 original + snapshot copy refs stay; clone refs released.
  EXPECT_EQ(fs.stats().allocated_blocks, 4u);
  EXPECT_FALSE(fs.registry().line_live(clone));
}

TEST(Fsim, DedupSharesBlocks) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions o = small_opts();
  o.dedup_fraction = 0.5;
  o.rng_seed = 7;
  bf::FileSystem fs(env, o);
  for (int i = 0; i < 50; ++i) fs.create_file(0, 10);
  EXPECT_GT(fs.stats().dedup_hits, 50u);
  EXPECT_LT(fs.stats().allocated_blocks, 500u);
  EXPECT_EQ(fs.stats().block_writes, 500u);
}

TEST(Fsim, CpTriggerByOpCount) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions o = small_opts();
  o.ops_per_cp = 16;
  bf::FileSystem fs(env, o);
  fs.create_file(0, 10);
  EXPECT_FALSE(fs.maybe_consistency_point().has_value());
  fs.create_file(0, 10);
  const auto s = fs.maybe_consistency_point();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->block_ops, 20u);
  EXPECT_EQ(fs.stats().cps_taken, 1u);
}

TEST(Fsim, CpTriggerByTime) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  fs.create_file(0, 1);
  fs.advance_time(5.0);
  EXPECT_FALSE(fs.maybe_consistency_point().has_value());
  fs.advance_time(6.0);
  EXPECT_TRUE(fs.maybe_consistency_point().has_value());
  // No ops since CP -> the time trigger alone does not fire again.
  fs.advance_time(20.0);
  EXPECT_FALSE(fs.maybe_consistency_point().has_value());
}

TEST(Fsim, JournalRecordsOpsAndClearsAtCp) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 2);
  fs.write_file(0, ino, 0, 1);
  EXPECT_EQ(fs.journal().size(), 4u);  // 2 adds + (remove+add)
  fs.consistency_point();
  EXPECT_TRUE(fs.journal().empty());
}

TEST(Fsim, VerifierAcceptsSimpleState) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 8);
  fs.take_snapshot(0);
  fs.consistency_point();
  fs.write_file(0, ino, 0, 4);
  fs.consistency_point();
  const auto result = bf::verify_backrefs(fs);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(result.ground_truth_refs, 0u);
  EXPECT_EQ(result.ground_truth_refs, result.db_refs);
}

TEST(Fsim, VerifierCatchesInjectedCorruption) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  fs.create_file(0, 4);
  fs.consistency_point();
  // Inject a spurious reference directly into the db, bypassing fsim. The
  // block must lie inside the allocated space or the verifier's sweep of
  // [0, max_block) would never see it.
  bc::BackrefKey bogus;
  bogus.block = 2;
  bogus.inode = 77;
  bogus.offset = 9;
  bogus.length = 1;
  bogus.line = 0;
  fs.db().add_reference(bogus);
  fs.db().consistency_point();  // advances the shared registry's CP
  const auto result = bf::verify_backrefs(fs);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.errors.empty());
}

TEST(Fsim, RelocateExtentUpdatesPointersAndBackrefs) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 4);
  const auto snap = fs.take_snapshot(0);
  fs.consistency_point();
  const bf::BlockNo old0 = fs.live_image(0).at(ino)->blocks[0];

  const bf::BlockNo target = 10000;
  const auto updated = fs.relocate_extent(old0, 1, target);
  EXPECT_EQ(updated, 2u);  // live + snapshot image pointers
  EXPECT_EQ(fs.live_image(0).at(ino)->blocks[0], target);
  EXPECT_EQ(fs.snapshot_images(0).at(snap).at(ino)->blocks[0], target);
  fs.consistency_point();
  const auto result = bf::verify_backrefs(fs);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(Fsim, RelocateRejectsBadTargets) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  const auto ino = fs.create_file(0, 4);
  const bf::BlockNo b0 = fs.live_image(0).at(ino)->blocks[0];
  const bf::BlockNo b1 = fs.live_image(0).at(ino)->blocks[1];
  EXPECT_THROW(fs.relocate_extent(b0, 1, b1), std::invalid_argument);
}

TEST(Fsim, BaselineSinkModeHasNoDb) {
  bf::NullSink sink;
  bf::FileSystem fs(small_opts(), sink);
  fs.create_file(0, 4);
  fs.consistency_point();
  EXPECT_FALSE(fs.has_db());
  EXPECT_THROW(fs.db(), std::logic_error);
  EXPECT_EQ(fs.current_cp(), 2u);  // own registry advanced
}

TEST(Fsim, ErrorsOnUnknownTargets) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, small_opts());
  EXPECT_THROW(fs.write_file(0, 999, 0, 1), std::invalid_argument);
  EXPECT_THROW(fs.delete_file(5, 1), std::invalid_argument);
  EXPECT_THROW(fs.delete_snapshot(0, 42), std::invalid_argument);
  EXPECT_THROW(fs.create_clone(0, 42), std::invalid_argument);
}
