// Randomized model checker for the service's snapshot/clone/migrate verbs
// (the service-level sibling of test_join_property's brute-force cross-check).
//
// Per seed, a single-threaded driver interleaves update batches, consistency
// points, snapshots, intra-volume clones, snapshot deletions, cross-volume
// clones (clone-as-new-tenant), live migrations, and maintenance across >= 8
// volumes on a 3-shard VolumeManager — and cross-checks every masked owner
// query against an independent model built on baseline::NaiveBackrefs (§4.1):
//
//   * raw record ground truth comes from the naive conceptual table, driven
//     in CP lockstep with the service volume (every verb that advances the
//     service CP advances the naive table's CP, including the conditional
//     flush inside clone_volume/migrate_volume);
//   * structural-inheritance expansion and version masking (§4.2.2) are
//     recomputed from scratch against the harness's own registry model;
//   * cross-volume clones replay the source's op log into a fresh naive
//     table, exactly mirroring the file-level copy the service performs.
//
// Maintenance may purge records at any point; masked query results are
// invariant under purging (that is the purge rule's correctness criterion),
// so the cross-check holds regardless of when compaction runs.
//
// A Balancer runs underneath the whole checker: autonomous clean-only
// migrations may relocate any volume at any moment. They must be completely
// invisible to the model — they never force a consistency point (so the CP
// lockstep holds) and never perturb a masked query. The driver's own
// migrate actions can now lose a race with the balancer's handoffs; they
// skip (and so does the balancer when it loses), which is the production
// contract between two placement actors.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baseline/naive_backrefs.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/random.hpp"

namespace bb = backlog::baseline;
namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace bu = backlog::util;

namespace {

constexpr std::size_t kShards = 3;
constexpr std::size_t kRootVolumes = 8;
constexpr std::size_t kMaxVolumes = 14;
constexpr int kActionsPerSeed = 260;

/// One replayable naive-table op (the clone path rebuilds a tenant's naive
/// table by replaying its log, mirroring the service's file-level copy).
struct NaiveOp {
  enum class Kind : std::uint8_t { kAdd, kRemove, kCp };
  Kind kind = Kind::kCp;
  bc::BackrefKey key;
};

/// Registry model: just enough state to recompute expansion and masking.
struct ModelLine {
  std::set<bc::Epoch> snapshots;                       // retained versions
  std::vector<std::pair<bc::LineId, bc::Epoch>> children;  // (child, branch_v)
  std::optional<bc::LineId> parent;
};

/// The harness's independent model of one hosted volume.
struct Model {
  std::unique_ptr<bs::Env> env;
  std::unique_ptr<bb::NaiveBackrefs> naive;
  std::vector<NaiveOp> oplog;
  std::map<bc::LineId, ModelLine> lines;
  bc::LineId next_line = 1;
  // Write-store emptiness mirror: entries that would flush at the next CP.
  std::uint64_t pending_from = 0;
  std::uint64_t pending_to = 0;
  std::set<bc::BackrefKey> window_adds;     // added since the last CP
  std::set<bc::BackrefKey> struct_removed;  // inherited refs already dropped
  std::map<bc::LineId, std::vector<bc::BackrefKey>> live;  // explicit live refs
  bc::BlockNo next_block = 1;

  [[nodiscard]] bool ws_nonempty() const {
    return pending_from + pending_to > 0;
  }
};

bb::NaiveOptions naive_options() {
  bb::NaiveOptions o;
  o.structural_removes = true;
  return o;
}

std::unique_ptr<Model> fresh_model(const bs::TempDir& dir,
                                   const std::string& name) {
  auto m = std::make_unique<Model>();
  m->env = std::make_unique<bs::Env>(dir.path() / "model" / name);
  m->naive = std::make_unique<bb::NaiveBackrefs>(*m->env, naive_options());
  m->lines.emplace(0, ModelLine{});
  return m;
}

void model_apply(Model& m, const bsvc::UpdateOp& op, bool structural) {
  m.oplog.push_back({op.kind == bsvc::UpdateOp::Kind::kAdd
                         ? NaiveOp::Kind::kAdd
                         : NaiveOp::Kind::kRemove,
                     op.key});
  if (op.kind == bsvc::UpdateOp::Kind::kAdd) {
    m.naive->add_reference(op.key);
    ++m.pending_from;
    m.window_adds.insert(op.key);
  } else {
    m.naive->remove_reference(op.key);
    if (!structural && m.window_adds.erase(op.key) > 0) {
      --m.pending_from;  // add+remove in one window annihilates in the WS
    } else {
      ++m.pending_to;
    }
  }
}

void model_cp(Model& m) {
  m.oplog.push_back({NaiveOp::Kind::kCp, {}});
  m.naive->on_consistency_point();
  m.pending_from = m.pending_to = 0;
  m.window_adds.clear();
}

/// Deep copy of `src` for a clone-as-new-tenant: replays the op log into a
/// fresh naive table (the model's rendering of the service's file copy) and
/// branches `new_line` off (parent_line, version).
std::unique_ptr<Model> clone_model(const bs::TempDir& dir,
                                   const std::string& name, const Model& src,
                                   bc::LineId parent_line, bc::Epoch version,
                                   bc::LineId new_line) {
  auto m = std::make_unique<Model>();
  m->env = std::make_unique<bs::Env>(dir.path() / "model" / name);
  m->naive = std::make_unique<bb::NaiveBackrefs>(*m->env, naive_options());
  for (const NaiveOp& op : src.oplog) {
    switch (op.kind) {
      case NaiveOp::Kind::kAdd: m->naive->add_reference(op.key); break;
      case NaiveOp::Kind::kRemove: m->naive->remove_reference(op.key); break;
      case NaiveOp::Kind::kCp: m->naive->on_consistency_point(); break;
    }
  }
  m->oplog = src.oplog;
  m->lines = src.lines;
  m->next_line = new_line + 1;
  m->lines[parent_line].children.emplace_back(new_line, version);
  ModelLine nl;
  nl.parent = parent_line;
  m->lines.emplace(new_line, nl);
  m->struct_removed = src.struct_removed;
  m->live = src.live;
  m->next_block = src.next_block;
  return m;
}

/// Mirror of SnapshotRegistry::valid_versions_in for the harness model:
/// retained snapshots in [from, to) plus the live head (every harness line
/// stays live) reported as the current CP.
std::vector<bc::Epoch> model_versions(const Model& m, bc::LineId line,
                                      bc::Epoch from, bc::Epoch to) {
  const auto it = m.lines.find(line);
  if (it == m.lines.end()) return {};
  std::vector<bc::Epoch> out;
  for (auto s = it->second.snapshots.lower_bound(from);
       s != it->second.snapshots.end() && *s < to; ++s) {
    out.push_back(*s);
  }
  const bc::Epoch cp = m.naive->current_cp();
  if (from <= cp && cp < to && (out.empty() || out.back() != cp)) {
    out.push_back(cp);
  }
  return out;
}

using ExpectedEntry = std::pair<bc::CombinedRecord, std::vector<bc::Epoch>>;

/// Brute-force recomputation of a masked owner query from the naive table
/// and the registry model: collect raw records, expand structural
/// inheritance (from == 0 records override), mask against valid versions.
std::set<ExpectedEntry> expected_query(Model& m, bc::BlockNo block) {
  std::vector<bc::CombinedRecord> raw;
  for (const bc::CombinedRecord& r : m.naive->query(block, 1)) {
    if (r.from != r.to) raw.push_back(r);  // from == to never materializes
  }
  std::set<bc::BackrefKey> overrides;
  std::set<bc::CombinedRecord> seen(raw.begin(), raw.end());
  for (const bc::CombinedRecord& r : raw) {
    if (r.is_override()) overrides.insert(r.key);
  }
  std::deque<bc::CombinedRecord> work(raw.begin(), raw.end());
  while (!work.empty()) {
    const bc::CombinedRecord r = work.front();
    work.pop_front();
    const auto it = m.lines.find(r.key.line);
    if (it == m.lines.end()) continue;
    for (const auto& [child, branch_v] : it->second.children) {
      if (!(r.from <= branch_v && branch_v < r.to)) continue;
      bc::BackrefKey key2 = r.key;
      key2.line = child;
      if (overrides.contains(key2)) continue;
      const bc::CombinedRecord synth{key2, 0, bc::kInfinity};
      if (seen.insert(synth).second) {
        overrides.insert(key2);
        work.push_back(synth);
      }
    }
  }
  std::set<ExpectedEntry> out;
  for (const bc::CombinedRecord& r : seen) {
    std::vector<bc::Epoch> versions = model_versions(m, r.key.line, r.from, r.to);
    if (versions.empty()) continue;
    out.emplace(r, std::move(versions));
  }
  return out;
}

std::set<ExpectedEntry> service_query(bsvc::VolumeManager& vm,
                                      const std::string& tenant,
                                      bc::BlockNo block) {
  std::set<ExpectedEntry> out;
  for (const bc::BackrefEntry& e : vm.query(tenant, block).get()) {
    out.emplace(e.rec, e.versions);
  }
  return out;
}

std::string dump_entries(const std::set<ExpectedEntry>& entries) {
  std::string out;
  for (const auto& [rec, versions] : entries) {
    out += "  " + bc::to_string(rec) + " versions:";
    for (const bc::Epoch v : versions) out += " " + std::to_string(v);
    out += "\n";
  }
  return out.empty() ? "  (empty)\n" : out;
}

class ServiceVersions : public ::testing::TestWithParam<std::uint64_t> {};

}  // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceVersions,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST_P(ServiceVersions, RandomizedVerbsMatchNaiveModel) {
  bu::Rng rng(GetParam() * 60013 + 17);
  bs::TempDir dir;

  bsvc::ServiceOptions so;
  so.shards = kShards;
  so.root = dir.path() / "service";
  so.db_options.expected_ops_per_cp = 512;
  so.sync_writes = false;
  // Adversarial cache config: a 4-page shared block cache (across 2 stripes)
  // keeps every volume's reads in constant eviction, and 2-entry result
  // caches churn through epoch-tag invalidation on every snapshot/clone/
  // migrate/maintenance verb — any stale page or stale result the caches
  // ever serve shows up as a model divergence below.
  so.cache.capacity_bytes = 4 * bs::kPageSize;
  so.cache.block_cache_shards = 2;
  so.cache.result_cache_entries = 2;
  bsvc::VolumeManager vm(so);

  // The autonomous rebalancer races every verb below. Clean-only moves
  // (its only mode) keep the naive model's CP lockstep intact.
  bsvc::BalancerPolicy bp;
  bp.poll_interval = std::chrono::milliseconds(2);
  bp.cooldown = std::chrono::milliseconds(20);
  bp.max_moves_per_cycle = 2;
  bp.min_load_to_act = 4;
  bsvc::Balancer balancer(vm, bp);
  balancer.start();

  std::vector<std::string> tenants;
  std::map<std::string, std::unique_ptr<Model>> models;
  for (std::size_t i = 0; i < kRootVolumes; ++i) {
    const std::string name = "vol-" + std::to_string(i);
    vm.open_volume(name);
    models.emplace(name, fresh_model(dir, name));
    tenants.push_back(name);
  }
  std::size_t clone_serial = 0;

  // Expected service-verb tallies, cross-checked against ServiceStats at
  // the end.
  std::uint64_t want_snapshots = 0, want_clones = 0, want_deletes = 0,
                want_migrations = 0;

  auto pick_line = [&](Model& m) {
    auto it = m.lines.begin();
    std::advance(it, rng.below(m.lines.size()));
    return it->first;
  };
  // A random (line, version) among retained snapshots, if any.
  auto pick_snapshot =
      [&](Model& m) -> std::optional<std::pair<bc::LineId, bc::Epoch>> {
    std::vector<std::pair<bc::LineId, bc::Epoch>> all;
    for (const auto& [line, li] : m.lines) {
      for (const bc::Epoch v : li.snapshots) all.emplace_back(line, v);
    }
    if (all.empty()) return std::nullopt;
    return all[rng.below(all.size())];
  };

  auto check_block = [&](const std::string& t, bc::BlockNo b) {
    Model& m = *models.at(t);
    const auto want = expected_query(m, b);
    const auto got = service_query(vm, t, b);
    ASSERT_EQ(got, want) << "seed " << GetParam() << " tenant " << t
                         << " block " << b << "\nexpected:\n"
                         << dump_entries(want) << "got:\n"
                         << dump_entries(got);
  };

  for (int action = 0; action < kActionsPerSeed; ++action) {
    const std::string t = tenants[rng.below(tenants.size())];
    Model& m = *models.at(t);
    const std::uint64_t roll = rng.below(100);

    if (roll < 40) {
      // Update batch: adds on random lines, explicit removes, and the
      // occasional structural remove of an inherited reference.
      std::vector<bsvc::UpdateOp> batch;
      std::vector<bool> structural;
      const std::size_t n = 1 + rng.below(8);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t op_roll = rng.below(100);
        if (op_roll < 30) {
          // Explicit remove of a random live reference.
          std::vector<bc::LineId> lines_with_live;
          for (auto& [line, refs] : m.live) {
            if (!refs.empty()) lines_with_live.push_back(line);
          }
          if (!lines_with_live.empty()) {
            auto& refs = m.live[lines_with_live[rng.below(lines_with_live.size())]];
            const std::size_t idx = rng.below(refs.size());
            batch.push_back({bsvc::UpdateOp::Kind::kRemove, refs[idx]});
            structural.push_back(false);
            refs[idx] = refs.back();
            refs.pop_back();
            continue;
          }
        } else if (op_roll < 42) {
          // Structural remove: drop a reference this line only inherits.
          const bc::LineId line = pick_line(m);
          const auto pit = m.lines.at(line).parent;
          if (pit.has_value()) {
            // Candidate: a live explicit ref somewhere up the parent chain.
            std::vector<bc::BackrefKey> candidates;
            for (std::optional<bc::LineId> a = pit; a.has_value();
                 a = m.lines.at(*a).parent) {
              const auto lit = m.live.find(*a);
              if (lit == m.live.end()) continue;
              candidates.insert(candidates.end(), lit->second.begin(),
                                lit->second.end());
            }
            if (!candidates.empty()) {
              bc::BackrefKey key2 = candidates[rng.below(candidates.size())];
              key2.line = line;
              const bc::CombinedRecord inherited{key2, 0, bc::kInfinity};
              // Only legal if the reference is actually visible on this
              // line right now (the expansion model is the oracle).
              if (!m.struct_removed.contains(key2) &&
                  expected_query(m, key2.block).contains(
                      {inherited, model_versions(m, line, 0, bc::kInfinity)})) {
                batch.push_back({bsvc::UpdateOp::Kind::kRemove, key2});
                structural.push_back(true);
                m.struct_removed.insert(key2);
                continue;
              }
            }
          }
        }
        // Default: add a fresh reference on a random line.
        bsvc::UpdateOp op;
        op.kind = bsvc::UpdateOp::Kind::kAdd;
        op.key.block = m.next_block++;
        op.key.inode = 2 + rng.below(6);
        op.key.offset = rng.below(4);
        op.key.length = 1;
        op.key.line = pick_line(m);
        m.live[op.key.line].push_back(op.key);
        batch.push_back(op);
        structural.push_back(false);
      }
      // Randomly coalesce the update window into the batched verb: both
      // paths must be indistinguishable to the model (apply_batch applies
      // via BacklogDb::apply_many — same pruning, same FIFO slot).
      if (rng.below(2) == 0) {
        vm.apply_batch(t, batch).get();
      } else {
        vm.apply(t, batch).get();
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        model_apply(m, batch[i], structural[i]);
      }
    } else if (roll < 50) {
      vm.consistency_point(t).get();
      model_cp(m);
    } else if (roll < 58) {
      const bc::LineId line = pick_line(m);
      const bc::Epoch want_version = m.naive->current_cp();
      const bc::Epoch got_version = vm.take_snapshot(t, line).get();
      ASSERT_EQ(got_version, want_version)
          << "seed " << GetParam() << ": CP lockstep lost on " << t;
      m.lines.at(line).snapshots.insert(got_version);
      model_cp(m);
      ++want_snapshots;
    } else if (roll < 64) {
      if (const auto snap = pick_snapshot(m)) {
        const bc::LineId got = vm.create_clone(t, snap->first, snap->second).get();
        ASSERT_EQ(got, m.next_line) << "seed " << GetParam();
        m.lines.at(snap->first).children.emplace_back(got, snap->second);
        ModelLine nl;
        nl.parent = snap->first;
        m.lines.emplace(got, nl);
        ++m.next_line;
        ++want_clones;
      }
    } else if (roll < 69) {
      if (const auto snap = pick_snapshot(m)) {
        vm.delete_snapshot(t, snap->first, snap->second).get();
        m.lines.at(snap->first).snapshots.erase(snap->second);
        ++want_deletes;
      }
    } else if (roll < 75) {
      // Live migration; the conditional drain CP is mirrored exactly. The
      // balancer may hold this volume's handoff right now — skip, exactly
      // as a production placement actor would.
      const bool had_pending = m.ws_nonempty();
      try {
        const auto ms = vm.migrate_volume(t, rng.below(kShards));
        ASSERT_EQ(ms.forced_cp, ms.moved && had_pending)
            << "seed " << GetParam();
        if (ms.forced_cp) model_cp(m);
        if (ms.moved) ++want_migrations;
      } catch (const std::logic_error&) {
        // Lost the race to the balancer's in-flight handoff.
      }
    } else if (roll < 79) {
      // Foreground maintenance: masked queries must be purge-invariant.
      vm.consistency_point(t).get();
      model_cp(m);
      vm.maintain(t).get();
    } else if (roll < 83 && tenants.size() < kMaxVolumes) {
      // Clone-as-new-tenant off a retained snapshot.
      if (const auto snap = pick_snapshot(m)) {
        const std::string dst = "clone-" + std::to_string(clone_serial++);
        const bool had_pending = m.ws_nonempty();
        const bc::LineId expect_line = m.next_line;
        const bc::LineId got =
            vm.clone_volume(t, dst, snap->first, snap->second);
        ASSERT_EQ(got, expect_line) << "seed " << GetParam();
        if (had_pending) model_cp(m);  // the service flushed src before copying
        models.emplace(dst, clone_model(dir, dst, m, snap->first, snap->second,
                                        got));
        tenants.push_back(dst);
        ++want_clones;  // the branch is accounted to the new volume
      }
    } else if (roll < 95) {
      // Masked owner query against the model (the core cross-check).
      const bc::BlockNo max_b = std::max<bc::BlockNo>(m.next_block, 2);
      check_block(t, 1 + rng.below(max_b));
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      // Registry cross-check: retained versions of a random line.
      const bc::LineId line = pick_line(m);
      const auto got = vm.list_versions(t, line).get();
      const auto& want_set = m.lines.at(line).snapshots;
      ASSERT_EQ(got, std::vector<bc::Epoch>(want_set.begin(), want_set.end()))
          << "seed " << GetParam() << " tenant " << t << " line " << line;
    }
  }

  // Freeze placement (join the balancer) so the final accounting below is
  // stable; the moves it made stay counted in the per-tenant stats.
  balancer.stop();

  // Chaos round (the fleet_sim PR): between the randomized verb loop and
  // the lockstep sweeps below, kill each shard in turn, submit an update
  // batch for *every* volume while it is dead (futures held — a synchronous
  // .get() against a dead shard would wait forever), restart it, and only
  // then collect the futures: nothing may be dropped. Each round then
  // forces a migration of every volume (require_clean=false, so mid-window
  // volumes take a forced CP, mirrored into the model) and re-checks a
  // masked query per tenant against NaiveBackrefs.
  for (std::size_t victim = 0; victim < kShards; ++victim) {
    ASSERT_TRUE(vm.kill_shard(victim)) << "seed " << GetParam();
    ASSERT_FALSE(vm.shard_alive(victim));
    std::vector<std::pair<std::string, std::vector<bsvc::UpdateOp>>> sent;
    std::vector<std::future<void>> pending;
    for (const std::string& t : tenants) {
      Model& m = *models.at(t);
      std::vector<bsvc::UpdateOp> batch;
      for (int i = 0; i < 3; ++i) {
        bsvc::UpdateOp op;
        op.kind = bsvc::UpdateOp::Kind::kAdd;
        op.key.block = m.next_block++;
        op.key.inode = 2 + rng.below(6);
        op.key.offset = rng.below(4);
        op.key.length = 1;
        op.key.line = pick_line(m);
        m.live[op.key.line].push_back(op.key);
        batch.push_back(op);
      }
      pending.push_back(vm.apply_batch(t, batch));
      sent.emplace_back(t, std::move(batch));
    }
    ASSERT_TRUE(vm.restart_shard(victim)) << "seed " << GetParam();
    for (auto& f : pending) f.get();  // zero dropped ops across the kill
    for (auto& [t, batch] : sent) {
      Model& m = *models.at(t);
      for (const auto& op : batch) model_apply(m, op, /*structural=*/false);
    }
    for (const std::string& t : tenants) {
      Model& m = *models.at(t);
      const bool had_pending = m.ws_nonempty();
      const auto ms =
          vm.migrate_volume(t, (vm.current_shard(t) + 1) % kShards);
      ASSERT_EQ(ms.forced_cp, ms.moved && had_pending)
          << "seed " << GetParam() << " chaos round " << victim;
      if (ms.forced_cp) model_cp(m);
      if (ms.moved) ++want_migrations;
    }
    for (const std::string& t : tenants) {
      Model& m = *models.at(t);
      const bc::BlockNo max_b = std::max<bc::BlockNo>(m.next_block, 2);
      check_block(t, 1 + rng.below(max_b));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // Clone-of-clone chain (depth >= 3) over the CoW file manifests: snapshot
  // and clone-as-new-tenant repeatedly, each hop sourcing from the previous
  // clone. The chained models stay in CP lockstep (take_snapshot commits a
  // CP; the clone itself flushes nothing afterwards), and the final sweep
  // below cross-checks every block of every chain volume like any other.
  {
    std::string cur = tenants[0];
    for (int depth = 0; depth < 3; ++depth) {
      Model& m = *models.at(cur);
      const bc::Epoch want_version = m.naive->current_cp();
      const bc::Epoch v = vm.take_snapshot(cur, 0).get();
      ASSERT_EQ(v, want_version) << "seed " << GetParam()
                                 << ": CP lockstep lost on chain hop " << depth;
      m.lines.at(0).snapshots.insert(v);
      model_cp(m);
      ++want_snapshots;
      const std::string dst = "chain-" + std::to_string(depth);
      const bc::LineId expect_line = m.next_line;
      const bc::LineId got = vm.clone_volume(cur, dst, 0, v);
      ASSERT_EQ(got, expect_line) << "seed " << GetParam();
      models.emplace(dst, clone_model(dir, dst, m, 0, v, got));
      tenants.push_back(dst);
      ++want_clones;
      cur = dst;
    }
  }

  // Final sweep: flush every volume and cross-check every block it ever
  // touched ("every query result", not a sample).
  ASSERT_GE(tenants.size(), kRootVolumes);
  for (const std::string& t : tenants) {
    Model& m = *models.at(t);
    vm.consistency_point(t).get();
    model_cp(m);
    for (bc::BlockNo b = 1; b < m.next_block; ++b) {
      check_block(t, b);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // CoW manifest cross-check against the naive manifest model: per volume,
  // the on-disk file set must equal its live Backlog manifest (no leaked or
  // dangling files after any interleaving of clones, deletes, migrations
  // and compactions), and the shared FileManifest's refcounts must equal a
  // from-scratch recount of run-file names across the volume directories.
  std::map<std::string, std::uint32_t> holders;
  for (const std::string& t : tenants) {
    std::set<std::string> live, on_disk;
    const std::filesystem::path vdir = so.root / t;
    vm.with_db(t,
               [&](bc::BacklogDb& db) {
                 for (const auto& f : db.live_files()) live.insert(f);
                 for (const auto& de : std::filesystem::directory_iterator(vdir)) {
                   if (de.is_regular_file())
                     on_disk.insert(de.path().filename().string());
                 }
               })
        .get();
    ASSERT_EQ(on_disk, live) << "seed " << GetParam() << " tenant " << t;
    for (const auto& f : live) {
      if (f.ends_with(".run")) ++holders[f];
    }
  }
  std::map<std::string, std::uint32_t> want_refs, got_refs;
  for (const auto& [name, n] : holders) {
    if (n >= 2) want_refs.emplace(name, n);
  }
  for (const auto& [name, e] : vm.shared_files().snapshot()) {
    got_refs.emplace(name, e.refcount);
  }
  ASSERT_EQ(got_refs, want_refs) << "seed " << GetParam();

  // Verb accounting survived migrations and clones; shard handoffs are the
  // driver's plus exactly the balancer's.
  const bsvc::ServiceStats stats = vm.stats();
  EXPECT_EQ(stats.tenants.size(), tenants.size());
  EXPECT_EQ(stats.total.snapshots, want_snapshots);
  EXPECT_EQ(stats.total.clones, want_clones);
  EXPECT_EQ(stats.total.snapshot_deletes, want_deletes);
  EXPECT_EQ(stats.total.migrations, want_migrations + balancer.moves());
}
