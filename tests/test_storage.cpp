// Tests for the storage layer: Env I/O accounting, block cache, B+-tree.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "storage/block_cache.hpp"
#include "storage/btree.hpp"
#include "storage/env.hpp"
#include "util/random.hpp"
#include "util/serde.hpp"

namespace bs = backlog::storage;
namespace bu = backlog::util;

namespace {
std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}
}  // namespace

TEST(Env, CreateWriteReadDelete) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("a.bin");
    const std::vector<std::uint8_t> data(100, 0xab);
    f->append(data);
    f->sync();
  }
  EXPECT_TRUE(env.file_exists("a.bin"));
  EXPECT_EQ(env.file_size("a.bin"), 100u);
  {
    auto f = env.open_file("a.bin");
    std::vector<std::uint8_t> buf(100);
    f->read(0, buf);
    EXPECT_EQ(buf[0], 0xab);
    EXPECT_EQ(buf[99], 0xab);
  }
  env.delete_file("a.bin");
  EXPECT_FALSE(env.file_exists("a.bin"));
  EXPECT_EQ(env.stats().files_created, 1u);
  EXPECT_EQ(env.stats().files_deleted, 1u);
}

TEST(Env, PageWriteAccounting) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  auto f = env.create_file("pages.bin");
  const auto before = env.stats();
  std::vector<std::uint8_t> one_page(bs::kPageSize, 1);
  f->append(one_page);
  EXPECT_EQ((env.stats() - before).page_writes, 1u);
  std::vector<std::uint8_t> three_pages(3 * bs::kPageSize, 2);
  f->append(three_pages);
  EXPECT_EQ((env.stats() - before).page_writes, 4u);
  // A small append to a page-aligned tail touches exactly one page.
  std::vector<std::uint8_t> tiny(10, 3);
  f->append(tiny);
  EXPECT_EQ((env.stats() - before).page_writes, 5u);
  // Appending again rewrites the partial tail page (charged again).
  f->append(tiny);
  EXPECT_EQ((env.stats() - before).page_writes, 6u);
}

TEST(Env, PageReadAccounting) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("r.bin");
    std::vector<std::uint8_t> data(4 * bs::kPageSize, 7);
    f->append(data);
  }
  auto f = env.open_file("r.bin");
  const auto before = env.stats();
  std::vector<std::uint8_t> page(bs::kPageSize);
  f->read_page(2, page);
  EXPECT_EQ((env.stats() - before).page_reads, 1u);
  // A read spanning a page boundary costs two page reads.
  std::vector<std::uint8_t> cross(100);
  f->read(bs::kPageSize - 50, cross);
  EXPECT_EQ((env.stats() - before).page_reads, 3u);
}

TEST(Env, ListFilesSorted) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  env.create_file("b")->close();
  env.create_file("a")->close();
  env.create_file("c")->close();
  const auto names = env.list_files();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[2], "c");
}

TEST(Env, RenameIsAtomicReplacement) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("x.tmp");
    f->append(bytes({1, 2, 3}));
  }
  env.rename_file("x.tmp", "x");
  EXPECT_FALSE(env.file_exists("x.tmp"));
  EXPECT_TRUE(env.file_exists("x"));
  EXPECT_EQ(env.file_size("x"), 3u);
}

TEST(Env, OpenMissingFileThrows) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  EXPECT_THROW(env.open_file("nope"), std::system_error);
  EXPECT_THROW(env.delete_file("nope"), std::runtime_error);
}

TEST(BlockCache, HitsAvoidIo) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("c.bin");
    std::vector<std::uint8_t> data(4 * bs::kPageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::uint8_t>(i / bs::kPageSize);
    f->append(data);
  }
  auto f = env.open_file("c.bin");
  bs::BlockCache cache(16 * bs::kPageSize, /*shards=*/1);
  const auto before = env.stats();
  auto p0 = cache.get(*f, 0);
  EXPECT_EQ((*p0)[0], 0);
  auto p1 = cache.get(*f, 1);
  EXPECT_EQ((*p1)[0], 1);
  EXPECT_EQ((env.stats() - before).page_reads, 2u);
  // Second access: cache hit, no additional I/O.
  auto p0b = cache.get(*f, 0);
  EXPECT_EQ((env.stats() - before).page_reads, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(BlockCache, EvictsLruAtCapacity) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("c.bin");
    std::vector<std::uint8_t> data(8 * bs::kPageSize, 5);
    f->append(data);
  }
  auto f = env.open_file("c.bin");
  bs::BlockCache cache(2 * bs::kPageSize, /*shards=*/1);
  cache.get(*f, 0);
  cache.get(*f, 1);
  cache.get(*f, 2);  // evicts page 0
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto before = env.stats();
  cache.get(*f, 0);  // miss again
  EXPECT_EQ((env.stats() - before).page_reads, 1u);
}

TEST(BlockCache, ClearAndEraseFile) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("c.bin");
    std::vector<std::uint8_t> data(2 * bs::kPageSize, 9);
    f->append(data);
  }
  auto f = env.open_file("c.bin");
  bs::BlockCache cache(8 * bs::kPageSize, /*shards=*/1);
  cache.get(*f, 0);
  cache.get(*f, 1);
  cache.erase_file(f->dev(), f->ino());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  cache.get(*f, 0);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BlockCache, ZeroCapacityAlwaysReads) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    auto f = env.create_file("c.bin");
    std::vector<std::uint8_t> data(bs::kPageSize, 1);
    f->append(data);
  }
  auto f = env.open_file("c.bin");
  bs::BlockCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const auto before = env.stats();
  cache.get(*f, 0);
  cache.get(*f, 0);
  EXPECT_EQ((env.stats() - before).page_reads, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BlockCache, HardLinksShareEntriesAcrossEnvs) {
  // The CoW-clone payoff: two volumes hard-linking the same run file get
  // one cache entry per page, because the key is (device, inode, page), not
  // the opening Env or path.
  bs::TempDir dir_a;
  bs::TempDir dir_b;
  bs::Env env_a(dir_a.path());
  bs::Env env_b(dir_b.path());
  {
    auto f = env_a.create_file("shared.run");
    std::vector<std::uint8_t> data(2 * bs::kPageSize, 0x5e);
    f->append(data);
    f->sync();
  }
  env_a.link_file_to("shared.run", dir_b.path());
  auto fa = env_a.open_file("shared.run");
  auto fb = env_b.open_file("shared.run");
  EXPECT_EQ(fa->ino(), fb->ino());
  bs::BlockCache cache(16 * bs::kPageSize, /*shards=*/1);
  cache.get(*fa, 0);
  const auto before = env_b.stats();
  auto p = cache.get(*fb, 0);  // hit: same (dev, ino, page)
  EXPECT_EQ((*p)[0], 0x5e);
  EXPECT_EQ((env_b.stats() - before).page_reads, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(BlockCache, EnvUnlinkInvalidatesLastLinkOnly) {
  // Deleting one of two hard links keeps the pages (the bytes are still
  // live under the other link); deleting the last link drops them, so a
  // recycled inode can never serve another file's stale bytes.
  bs::TempDir dir_a;
  bs::TempDir dir_b;
  bs::Env env_a(dir_a.path());
  bs::Env env_b(dir_b.path());
  bs::BlockCache cache(16 * bs::kPageSize, /*shards=*/1);
  env_a.set_block_cache(&cache);
  env_b.set_block_cache(&cache);
  {
    auto f = env_a.create_file("shared.run");
    std::vector<std::uint8_t> data(bs::kPageSize, 0x11);
    f->append(data);
    f->sync();
  }
  env_a.link_file_to("shared.run", dir_b.path());
  {
    auto f = env_a.open_file("shared.run");
    cache.get(*f, 0);
  }
  env_a.delete_file("shared.run");  // nlink 2 -> 1: entries survive
  EXPECT_EQ(cache.stats().entries, 1u);
  env_b.delete_file("shared.run");  // last link: entries dropped
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

// --- B+-tree -----------------------------------------------------------------

namespace {
std::vector<std::uint8_t> key8(std::uint64_t k) {
  std::vector<std::uint8_t> out(8);
  bu::put_be64(out.data(), k);
  return out;
}
std::vector<std::uint8_t> val8(std::uint64_t v) {
  std::vector<std::uint8_t> out(8);
  bu::put_u64(out.data(), v);
  return out;
}
}  // namespace

TEST(BTree, PutGetEraseBasics) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 8);
  EXPECT_TRUE(tree.put(key8(5), val8(50)));
  EXPECT_TRUE(tree.put(key8(3), val8(30)));
  EXPECT_FALSE(tree.put(key8(5), val8(55)));  // overwrite
  ASSERT_TRUE(tree.get(key8(5)).has_value());
  EXPECT_EQ(bu::get_u64(tree.get(key8(5))->data()), 55u);
  EXPECT_FALSE(tree.get(key8(4)).has_value());
  EXPECT_TRUE(tree.erase(key8(3)));
  EXPECT_FALSE(tree.erase(key8(3)));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTree, SplitsGrowHeight) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 8);
  // 255 records/leaf at 16-byte slots; 100k records forces height >= 3.
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) tree.put(key8(i * 7 % n), val8(i));
  EXPECT_EQ(tree.size(), n);
  EXPECT_GE(tree.stats().height, 3u);
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.get(key8(k)).has_value()) << "missing key " << k;
  }
}

TEST(BTree, CursorScansInOrder) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 8);
  for (std::uint64_t k = 0; k < 1000; ++k) tree.put(key8(k * 2), val8(k));
  // Full scan.
  std::uint64_t expect = 0, count = 0;
  for (auto c = tree.begin(); c.valid(); c.next()) {
    EXPECT_EQ(bu::get_be64(c.key().data()), expect);
    expect += 2;
    ++count;
  }
  EXPECT_EQ(count, 1000u);
  // Seek to a present key, a missing key, and past the end.
  auto c = tree.seek(key8(500));
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(bu::get_be64(c.key().data()), 500u);
  c = tree.seek(key8(501));
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(bu::get_be64(c.key().data()), 502u);
  c = tree.seek(key8(99999));
  EXPECT_FALSE(c.valid());
}

TEST(BTree, PersistsAcrossReopen) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    bs::BTree tree(env, "t.btree", 8, 8);
    for (std::uint64_t k = 0; k < 5000; ++k) tree.put(key8(k), val8(k * 10));
    tree.flush();
  }
  bs::BTree tree(env, "t.btree", 8, 8);
  EXPECT_EQ(tree.size(), 5000u);
  for (std::uint64_t k = 0; k < 5000; k += 7) {
    auto v = tree.get(key8(k));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(bu::get_u64(v->data()), k * 10);
  }
}

TEST(BTree, ReopenWithWrongGeometryThrows) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  {
    bs::BTree tree(env, "t.btree", 8, 8);
    tree.put(key8(1), val8(1));
    tree.flush();
  }
  EXPECT_THROW(bs::BTree(env, "t.btree", 16, 8), std::runtime_error);
}

TEST(BTree, BoundedCacheStillCorrect) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  // Tiny cache (8 pages) forces eviction + write-back mid-workload.
  bs::BTree tree(env, "t.btree", 8, 8, /*cache_pages=*/8);
  const std::uint64_t n = 20000;
  for (std::uint64_t k = 0; k < n; ++k) tree.put(key8(k), val8(k));
  for (std::uint64_t k = 0; k < n; k += 13) {
    auto v = tree.get(key8(k));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(bu::get_u64(v->data()), k);
  }
  // Eviction must have produced real I/O.
  EXPECT_GT(env.stats().page_writes, 0u);
  EXPECT_GT(env.stats().page_reads, 0u);
}

TEST(BTree, RandomizedAgainstStdMapOracle) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 8, 64);
  std::map<std::uint64_t, std::uint64_t> oracle;
  bu::Rng rng(12345);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.below(5000);
    switch (rng.below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        tree.put(key8(k), val8(v));
        oracle[k] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(tree.erase(key8(k)), oracle.erase(k) > 0);
        break;
      }
      default: {
        auto got = tree.get(key8(k));
        auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end());
        if (got) EXPECT_EQ(bu::get_u64(got->data()), it->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  // Final full-scan equivalence.
  auto it = oracle.begin();
  for (auto c = tree.begin(); c.valid(); c.next(), ++it) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(bu::get_be64(c.key().data()), it->first);
    EXPECT_EQ(bu::get_u64(c.value().data()), it->second);
  }
  EXPECT_EQ(it, oracle.end());
}

TEST(BTree, WrongKeySizeArgumentsThrow) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 8);
  std::vector<std::uint8_t> short_key(4, 0);
  EXPECT_THROW(tree.put(short_key, val8(0)), std::invalid_argument);
  EXPECT_THROW(tree.get(short_key), std::invalid_argument);
  EXPECT_THROW(tree.erase(short_key), std::invalid_argument);
}

TEST(BTree, ZeroValueSizeSupported) {
  // A pure key-set tree (value_size = 0) must work: the naive baseline's
  // live-record scan relies on prefix seeks over such shapes.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BTree tree(env, "t.btree", 8, 0);
  std::vector<std::uint8_t> empty;
  for (std::uint64_t k = 0; k < 1000; ++k) tree.put(key8(k), empty);
  EXPECT_TRUE(tree.get(key8(500)).has_value());
  EXPECT_EQ(tree.get(key8(500))->size(), 0u);
}
