// Property test: the streaming outer join must agree with a brute-force
// reference implementation on randomly generated From/To tables, including
// multi-group inputs, duplicate epochs, overrides and annihilating pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/join.hpp"
#include "lsm/run_file.hpp"
#include "util/random.hpp"

namespace bc = backlog::core;
namespace bl = backlog::lsm;
namespace bu = backlog::util;

namespace {

/// Reference implementation, straight from §4.2.1: pair each From (ascending)
/// with the smallest unused To > from; leftovers join ∞ / 0; from == to
/// pairs annihilate.
std::vector<bc::CombinedRecord> brute_force(const bc::BackrefKey& key,
                                            std::vector<bc::Epoch> froms,
                                            std::vector<bc::Epoch> tos) {
  std::sort(froms.begin(), froms.end());
  std::sort(tos.begin(), tos.end());
  std::vector<bool> to_used(tos.size(), false);
  std::vector<bc::CombinedRecord> out;
  for (const bc::Epoch f : froms) {
    bool matched = false;
    for (std::size_t i = 0; i < tos.size(); ++i) {
      if (to_used[i] || tos[i] < f) continue;
      to_used[i] = true;
      matched = true;
      if (tos[i] != f) out.push_back({key, f, tos[i]});  // f==to: annihilate
      break;
    }
    if (!matched) out.push_back({key, f, bc::kInfinity});
  }
  for (std::size_t i = 0; i < tos.size(); ++i) {
    if (!to_used[i]) out.push_back({key, 0, tos[i]});
  }
  std::sort(out.begin(), out.end());
  return out;
}

class JoinProperty : public ::testing::TestWithParam<std::uint64_t> {};

}  // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, JoinProperty, ::testing::Range<std::uint64_t>(0, 12));

TEST_P(JoinProperty, StreamMatchesBruteForce) {
  bu::Rng rng(GetParam() * 7919 + 1);
  // Generate random per-group epoch sets over a handful of keys.
  std::map<bc::BackrefKey, std::pair<std::vector<bc::Epoch>, std::vector<bc::Epoch>>>
      groups;
  const int n_groups = 1 + static_cast<int>(rng.below(20));
  for (int g = 0; g < n_groups; ++g) {
    bc::BackrefKey key;
    key.block = rng.below(50);
    key.inode = 2 + rng.below(4);
    key.offset = rng.below(3);
    key.length = 1;
    key.line = rng.below(3);
    auto& [froms, tos] = groups[key];
    const int nf = static_cast<int>(rng.below(6));
    const int nt = static_cast<int>(rng.below(6));
    for (int i = 0; i < nf; ++i) froms.push_back(1 + rng.below(30));
    for (int i = 0; i < nt; ++i) tos.push_back(1 + rng.below(30));
  }

  // Build the encoded sorted streams.
  std::vector<std::uint8_t> from_buf, to_buf;
  std::vector<bc::FromRecord> from_recs;
  std::vector<bc::ToRecord> to_recs;
  for (auto& [key, ft] : groups) {
    for (const bc::Epoch f : ft.first) from_recs.push_back({key, f});
    for (const bc::Epoch t : ft.second) to_recs.push_back({key, t});
  }
  std::sort(from_recs.begin(), from_recs.end());
  std::sort(to_recs.begin(), to_recs.end());
  for (const auto& r : from_recs) {
    from_buf.resize(from_buf.size() + bc::kFromRecordSize);
    bc::encode_from(r, from_buf.data() + from_buf.size() - bc::kFromRecordSize);
  }
  for (const auto& r : to_recs) {
    to_buf.resize(to_buf.size() + bc::kToRecordSize);
    bc::encode_to(r, to_buf.data() + to_buf.size() - bc::kToRecordSize);
  }

  bc::OuterJoinStream join(
      std::make_unique<bl::VectorStream>(std::move(from_buf), bc::kFromRecordSize),
      std::make_unique<bl::VectorStream>(std::move(to_buf), bc::kToRecordSize));
  std::vector<bc::CombinedRecord> streamed;
  while (join.valid()) {
    streamed.push_back(bc::decode_combined(join.record().data()));
    join.next();
  }

  std::vector<bc::CombinedRecord> expected;
  for (const auto& [key, ft] : groups) {
    auto group = brute_force(key, ft.first, ft.second);
    expected.insert(expected.end(), group.begin(), group.end());
  }
  std::sort(expected.begin(), expected.end());

  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i], expected[i]) << "index " << i;
  }
}
