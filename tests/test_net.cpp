// Tests for the wire protocol and the epoll network server.
//
// Three layers: pure frame codec tests; end-to-end verb coverage through the
// synchronous Client against a live ServiceEndpoint; and an adversarial
// corruption suite that pushes malformed byte streams at the server through
// raw sockets and asserts the server's contract — every corrupt stream is a
// clean connection close plus a decode-error counter bump, never a crash,
// and a healthy client on the same server keeps working throughout. The
// whole file runs under ASan/UBSan in CI.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/handlers.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bn = backlog::net;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

// --- frame codec -------------------------------------------------------------

TEST(Frame, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing),
                                      bn::tenant_hash("t0"), payload);
  ASSERT_EQ(frame.size(), bn::kHeaderSize + payload.size());
  bn::FrameHeader h;
  EXPECT_EQ(bn::decode_header(frame, h), bn::HeaderStatus::kOk);
  EXPECT_EQ(h.verb_id(), bn::Verb::kPing);
  EXPECT_FALSE(h.is_response());
  EXPECT_EQ(h.tenant_id, bn::tenant_hash("t0"));
  EXPECT_EQ(h.payload_len, payload.size());
  EXPECT_TRUE(bn::frame_crc_ok(frame));
}

TEST(Frame, EveryHeaderByteFlipIsDetected) {
  // Flipping any single bit in the covered header region or payload must be
  // caught by validation or the crc — nothing slips through.
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto good = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing),
                                     0, payload);
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = good;
      bad[i] ^= static_cast<std::uint8_t>(1u << bit);
      bn::FrameHeader h;
      const bn::HeaderStatus st = bn::decode_header(bad, h);
      if (st == bn::HeaderStatus::kOk) {
        EXPECT_FALSE(bn::frame_crc_ok(bad))
            << "undetected flip at byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(Frame, HeaderValidationOrder) {
  const auto good = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing),
                                     0, {});
  bn::FrameHeader h;

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(bn::decode_header(bad_magic, h), bn::HeaderStatus::kBadMagic);

  auto bad_version = good;
  bad_version[4] = 0x7f;
  EXPECT_EQ(bn::decode_header(bad_version, h), bn::HeaderStatus::kBadVersion);

  auto too_large = good;
  const std::uint32_t huge = bn::kMaxFramePayload + 1;
  std::memcpy(too_large.data() + 16, &huge, 4);
  EXPECT_EQ(bn::decode_header(too_large, h), bn::HeaderStatus::kTooLarge);
}

TEST(Frame, ResponsePayloadRoundTrip) {
  const std::vector<std::uint8_t> body = {42, 43};
  const auto ok = bn::encode_response_payload(bsvc::ErrorCode::kOk, "", body);
  backlog::util::Reader r(ok);
  const bn::ResponseView v = bn::decode_response_prefix(r);
  EXPECT_EQ(v.code, bsvc::ErrorCode::kOk);
  EXPECT_EQ(r.u8(), 42);

  const auto err = bn::encode_response_payload(bsvc::ErrorCode::kThrottled,
                                               "slow down", {});
  backlog::util::Reader r2(err);
  const bn::ResponseView v2 = bn::decode_response_prefix(r2);
  EXPECT_EQ(v2.code, bsvc::ErrorCode::kThrottled);
  EXPECT_EQ(v2.message, "slow down");
}

TEST(Frame, ParseHostPort) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(bn::parse_host_port("127.0.0.1:80", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 80);
  EXPECT_TRUE(bn::parse_host_port(":8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_FALSE(bn::parse_host_port("nohost", host, port));
  EXPECT_FALSE(bn::parse_host_port("h:0", host, port));
  EXPECT_FALSE(bn::parse_host_port("h:65536", host, port));
  EXPECT_FALSE(bn::parse_host_port("h:12x", host, port));
  EXPECT_FALSE(bn::parse_host_port("h:", host, port));
}

// --- end-to-end fixture ------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bsvc::ServiceOptions so;
    so.shards = 2;
    so.root = dir_.path();
    so.sync_writes = false;
    vm_ = std::make_unique<bsvc::VolumeManager>(so);
    endpoint_ = std::make_unique<bn::ServiceEndpoint>(*vm_);
    bn::ServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.io_threads = 2;
    endpoint_->start(opts);
  }

  void TearDown() override {
    endpoint_->stop();
    for (const auto& t : vm_->tenants()) vm_->close_volume(t);
  }

  std::uint16_t port() const { return endpoint_->port(); }

  bs::TempDir dir_;
  std::unique_ptr<bsvc::VolumeManager> vm_;
  std::unique_ptr<bn::ServiceEndpoint> endpoint_;
};

bsvc::UpdateOp add_op(std::uint64_t block) {
  bsvc::UpdateOp op;
  op.kind = bsvc::UpdateOp::Kind::kAdd;
  op.key.block = block;
  op.key.inode = 2;
  op.key.length = 1;
  return op;
}

TEST_F(NetServerTest, VerbCoverageEndToEnd) {
  bn::Client c;
  c.connect("127.0.0.1", port());
  c.ping();

  c.open_volume("alpha");
  EXPECT_EQ(c.list_tenants(), std::vector<std::string>{"alpha"});

  std::vector<bsvc::UpdateOp> batch;
  for (std::uint64_t b = 1; b <= 200; ++b) batch.push_back(add_op(b));
  c.apply_batch("alpha", batch);

  bsvc::QueryRange qr;
  qr.first = 1;
  qr.count = 200;
  const auto results = c.query_batch("alpha", {qr});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].size(), 200u);

  const bc::CpFlushStats cp = c.consistency_point("alpha");
  EXPECT_EQ(cp.block_ops, 200u);

  const bc::Epoch v = c.take_snapshot("alpha", 0);
  EXPECT_GE(v, 1u);
  const auto versions = c.list_versions("alpha", 0);
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions.back(), v);

  const auto clone = c.clone_volume("alpha", "beta", 0, v);
  EXPECT_GT(clone.new_line, 0u);
  EXPECT_GE(clone.shared_files, 1u);

  const bc::QuickStats qs = c.quick_stats("alpha");
  EXPECT_EQ(qs.run_records, 200u);

  const bsvc::MigrationStats ms = c.migrate_volume("alpha", 0);
  EXPECT_EQ(ms.target_shard, 0u);

  bsvc::TenantQos qos;
  qos.ops_per_sec = 100000;
  c.set_qos("alpha", qos);
  c.apply_batch("alpha", {add_op(500)});
  const bsvc::QosSnapshot snap = c.qos_snapshot("alpha");
  EXPECT_TRUE(snap.enabled);
  EXPECT_GE(snap.admitted, 1u);

  // Text verbs: non-empty, and info mentions the tenant by name.
  EXPECT_NE(c.info_text("alpha").find("volume:            alpha"),
            std::string::npos);
  EXPECT_NE(c.runs_text("alpha").find(".run"), std::string::npos);
  EXPECT_FALSE(c.query_text("alpha", 1, 4, false).empty());
  EXPECT_FALSE(c.scan_text("alpha").empty());
  EXPECT_FALSE(c.stats_text(false).empty());
  EXPECT_NE(c.stats_text(true).find("\"tenants\""), std::string::npos);
  EXPECT_NE(c.metrics_text(false).find("backlog_net_frames"),
            std::string::npos);
  c.set_tracing(1, 1);
  c.apply_batch("alpha", {add_op(501)});
  EXPECT_NE(c.trace_text(1, 1).find("sampled spans"), std::string::npos);

  c.destroy_volume("beta");
  EXPECT_THROW(c.quick_stats("beta"), bsvc::ServiceError);
}

TEST_F(NetServerTest, PollRatesPrimesAcrossCalls) {
  bn::Client c;
  c.connect("127.0.0.1", port());
  // The daemon-side poller has never polled: the first sample must be
  // labeled unprimed (its zero rates mean "unknown", not "idle").
  const bsvc::RateSample first = c.poll_rates();
  EXPECT_FALSE(first.primed);
  const bsvc::RateSample second = c.poll_rates();
  EXPECT_TRUE(second.primed);
}

TEST_F(NetServerTest, ThrottledPropagatesAsServiceError) {
  bn::Client c;
  c.connect("127.0.0.1", port());
  c.open_volume("hot");
  bsvc::TenantQos qos;
  qos.ops_per_sec = 0.5;  // one token every 2s: queued ops park for a while
  qos.burst_ops = 1;
  qos.max_wait_queue = 1;  // the smallest queue the gate allows
  c.set_qos("hot", qos);

  // Drain the burst token, then park a second op in the depth-1 wait queue
  // from its own connection (the wire protocol is one-outstanding-request,
  // so the waiter must not share the connection that probes the overflow).
  c.apply_batch("hot", {add_op(1000)});
  std::thread blocker([&] {
    bn::Client b;
    b.connect("127.0.0.1", port());
    b.apply_batch("hot", {add_op(1001)});  // queued until a token refills
  });

  // Wait until the gate reports the waiter, then overflow the queue: the
  // rejection must surface here as a typed kThrottled ServiceError, exactly
  // as it does for an in-process caller.
  bool parked = false;
  for (int i = 0; i < 500 && !parked; ++i) {
    parked = c.qos_snapshot("hot").wait_depth >= 1;
    if (!parked) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(parked);
  try {
    c.apply_batch("hot", {add_op(1002)});
    ADD_FAILURE() << "expected kThrottled";
  } catch (const bsvc::ServiceError& e) {
    EXPECT_EQ(e.code(), bsvc::ErrorCode::kThrottled);
  }
  blocker.join();
  c.ping();  // the error was the op's, not the connection's
}

TEST_F(NetServerTest, NoSuchTenantAndBadRequest) {
  bn::Client c;
  c.connect("127.0.0.1", port());
  try {
    c.quick_stats("ghost");
    FAIL() << "expected ServiceError";
  } catch (const bsvc::ServiceError& e) {
    EXPECT_EQ(e.code(), bsvc::ErrorCode::kNoSuchTenant);
  }
  try {
    c.open_volume("../escape");  // rejected by tenant-name validation
    FAIL() << "expected ServiceError";
  } catch (const bsvc::ServiceError& e) {
    EXPECT_EQ(e.code(), bsvc::ErrorCode::kBadRequest);
  }
  c.ping();
}

TEST_F(NetServerTest, UnknownVerbKeepsConnection) {
  bn::Client c;
  c.connect("127.0.0.1", port());
  try {
    c.call(static_cast<bn::Verb>(999), "", {});
    FAIL() << "expected ServiceError";
  } catch (const bsvc::ServiceError& e) {
    EXPECT_EQ(e.code(), bsvc::ErrorCode::kNoSuchVerb);
  }
  c.ping();  // a framed unknown verb is NOT a decode error
  EXPECT_EQ(endpoint_->server().stats().decode_errors, 0u);
}

// --- corruption suite (raw sockets) ------------------------------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// True if the peer closed (or reset) the connection within the timeout.
bool peer_closed(int fd, int timeout_ms = 5000) {
  char buf[512];
  while (true) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) return false;  // timeout: server kept the connection
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0) return errno == ECONNRESET;
    // Data (a response) — keep draining until close or timeout.
  }
}

TEST_F(NetServerTest, CorruptStreamsCloseCleanly) {
  const std::uint64_t base_errors = endpoint_->server().stats().decode_errors;
  std::uint64_t expected = 0;

  const auto expect_rejected = [&](std::vector<std::uint8_t> bytes,
                                   const char* what) {
    const int fd = raw_connect(port());
    send_all(fd, bytes);
    EXPECT_TRUE(peer_closed(fd)) << what;
    ::close(fd);
    ++expected;
  };

  // Bad magic.
  auto frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing),
                                0, {});
  frame[0] ^= 0xff;
  expect_rejected(frame, "bad magic");

  // Bad version.
  frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0, {});
  frame[4] = 0x7e;
  expect_rejected(frame, "bad version");

  // Payload length over the absolute cap.
  frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0, {});
  const std::uint32_t huge = bn::kMaxFramePayload + 1;
  std::memcpy(frame.data() + 16, &huge, 4);
  expect_rejected(frame, "payload over absolute cap");

  // Payload length over the verb's cap (kPing is a control verb) but under
  // the absolute cap: must be rejected from the header alone, before the
  // server buffers a single payload byte.
  frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0, {});
  const std::uint32_t over_verb_cap = bn::kControlPayloadCap + 1;
  std::memcpy(frame.data() + 16, &over_verb_cap, 4);
  expect_rejected(frame, "payload over verb cap");

  // CRC mismatch (flip a payload byte after encoding).
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0,
                           payload);
  frame[bn::kHeaderSize + 1] ^= 0x01;
  expect_rejected(frame, "crc mismatch");

  // Random garbage flood.
  std::vector<std::uint8_t> garbage(4096);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  expect_rejected(garbage, "garbage flood");

  // Truncated header: send half a header, then close. EOF mid-frame is a
  // decode error (the peer abandoned a frame it promised).
  {
    const int fd = raw_connect(port());
    frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0, {});
    send_all(fd, std::span<const std::uint8_t>(frame.data(), 10));
    ::close(fd);
    ++expected;
  }

  // Mid-frame close: full header promising 100 payload bytes, only 10 sent.
  {
    const int fd = raw_connect(port());
    std::vector<std::uint8_t> body(100, 0xab);
    frame = bn::encode_frame(static_cast<std::uint16_t>(bn::Verb::kPing), 0,
                             body);
    send_all(fd, std::span<const std::uint8_t>(frame.data(),
                                               bn::kHeaderSize + 10));
    ::close(fd);
    ++expected;
  }

  // The counter is bumped on the io thread; closes from our side race the
  // epoll wakeup, so poll for convergence.
  for (int i = 0; i < 200; ++i) {
    if (endpoint_->server().stats().decode_errors >= base_errors + expected)
      break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(endpoint_->server().stats().decode_errors, base_errors + expected);

  // Through it all the server must still serve a well-behaved client.
  bn::Client c;
  c.connect("127.0.0.1", port());
  c.ping();
  c.open_volume("survivor");
  c.apply_batch("survivor", {add_op(7)});
  EXPECT_EQ(c.consistency_point("survivor").block_ops, 1u);
}

TEST_F(NetServerTest, ManyParallelGarbageConnections) {
  // A small swarm of corrupt clients must not wedge the io threads.
  std::vector<int> fds;
  for (int i = 0; i < 16; ++i) fds.push_back(raw_connect(port()));
  std::vector<std::uint8_t> junk(64, 0x5a);
  for (const int fd : fds) send_all(fd, junk);
  for (const int fd : fds) {
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
  }
  bn::Client c;
  c.connect("127.0.0.1", port());
  c.ping();
}

}  // namespace
