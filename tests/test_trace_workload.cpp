// Tests for the workload generator, snapshot/clone policies, and the
// NFS-trace synthesizer + player.
#include <gtest/gtest.h>

#include <sstream>

#include "fsim/fsim.hpp"
#include "fsim/trace.hpp"
#include "fsim/verifier.hpp"
#include "fsim/workload.hpp"
#include "storage/env.hpp"

namespace bf = backlog::fsim;
namespace bs = backlog::storage;

namespace {
bf::FsimOptions manual_cp_opts() {
  bf::FsimOptions o;
  o.ops_per_cp = 1000000;
  o.dedup_fraction = 0;
  return o;
}
}  // namespace

TEST(Workload, GeneratorIssuesRequestedWrites) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, manual_cp_opts());
  bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
  gen.run_block_writes(1000);
  EXPECT_GE(fs.stats().block_writes, 1000u);
  EXPECT_GT(gen.live_files(), 0u);
}

TEST(Workload, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    bs::TempDir dir;
    bs::Env env(dir.path());
    bf::FsimOptions fo = manual_cp_opts();
    fo.rng_seed = 7;
    bf::FileSystem fs(env, fo);
    bf::WorkloadOptions wo;
    wo.seed = seed;
    bf::WorkloadGenerator gen(fs, 0, wo);
    gen.run_block_writes(500);
    return std::make_tuple(fs.stats().block_writes, fs.stats().block_frees,
                           fs.stats().allocated_blocks, fs.max_block());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Workload, PopulationStaysBounded) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, manual_cp_opts());
  bf::WorkloadOptions wo;
  wo.max_live_files = 50;
  wo.w_delete = 0.05;  // creates dominate; the cap must intervene
  bf::WorkloadGenerator gen(fs, 0, wo);
  gen.run_block_writes(5000);
  EXPECT_LE(gen.live_files(), 50u);
}

TEST(Workload, SnapshotSchedulerKeepsFourPlusFour) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, manual_cp_opts());
  bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
  bf::SnapshotPolicy policy;
  policy.hourly_every_cps = 2;
  policy.keep_hourly = 4;
  policy.nightly_every_cps = 10;
  policy.keep_nightly = 4;
  bf::SnapshotScheduler sched(fs, 0, policy);
  for (std::uint64_t cp = 1; cp <= 100; ++cp) {
    gen.run_block_writes(20);
    sched.on_cp(cp);
    fs.consistency_point();
  }
  EXPECT_EQ(sched.hourly().size(), 4u);
  EXPECT_EQ(sched.nightly().size(), 4u);
  EXPECT_EQ(fs.registry().snapshots(0).size(), 8u);
  EXPECT_TRUE(bf::verify_backrefs(fs).ok);
}

TEST(Workload, CloneChurnerCreatesAndRetires) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FileSystem fs(env, manual_cp_opts());
  bf::WorkloadGenerator gen(fs, 0, bf::WorkloadOptions{});
  gen.run_block_writes(200);
  const auto snap = fs.take_snapshot(0);
  fs.consistency_point();

  bf::ClonePolicy cp;
  cp.clones_per_cp = 1.0;  // force activity
  cp.max_live_clones = 2;
  cp.clone_writes = 16;
  bf::CloneChurner churner(fs, 0, cp, bf::WorkloadOptions{});
  for (int i = 0; i < 6; ++i) {
    churner.on_cp({snap});
    fs.consistency_point();
  }
  EXPECT_GE(churner.clones_created(), 4u);
  EXPECT_LE(churner.live_clones(), 2u);
  EXPECT_TRUE(bf::verify_backrefs(fs).ok);
}

TEST(Workload, PresetsHaveDistinctCharacter) {
  const auto db = bf::dbench_preset(1);
  const auto vm = bf::varmail_preset(1);
  const auto pm = bf::postmark_preset(1);
  EXPECT_GT(vm.small_file_fraction, db.small_file_fraction);
  EXPECT_GT(pm.w_create + pm.w_delete, db.w_create + db.w_delete);
  EXPECT_GT(vm.w_append, db.w_append);
}

TEST(Trace, SynthesizerIsDeterministic) {
  bf::TraceSynthOptions o;
  o.hours = 2;
  o.seed = 5;
  const auto a = bf::synthesize_eecs03_like(o);
  const auto b = bf::synthesize_eecs03_like(o);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  ASSERT_FALSE(a.ops.empty());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].timestamp, b.ops[i].timestamp);
    EXPECT_EQ(a.ops[i].type, b.ops[i].type);
  }
}

TEST(Trace, DiurnalLoadVaries) {
  bf::TraceSynthOptions o;
  o.hours = 24;
  o.seed = 9;
  const auto t = bf::synthesize_eecs03_like(o);
  // Count ops in the first hour (trough: trace starts at midnight) vs the
  // 12th hour (peak).
  std::size_t h0 = 0, h12 = 0;
  for (const auto& op : t.ops) {
    if (op.timestamp < 3600) ++h0;
    if (op.timestamp >= 12 * 3600 && op.timestamp < 13 * 3600) ++h12;
  }
  EXPECT_GT(h12, h0 * 2) << "midday load must exceed the night trough";
}

TEST(Trace, SaveLoadRoundTrip) {
  bf::TraceSynthOptions o;
  o.hours = 1;
  o.seed = 3;
  const auto t = bf::synthesize_eecs03_like(o);
  std::stringstream ss;
  t.save(ss);
  const auto t2 = bf::Trace::load(ss);
  ASSERT_EQ(t2.ops.size(), t.ops.size());
  for (std::size_t i = 0; i < t.ops.size(); i += 17) {
    EXPECT_EQ(t2.ops[i].type, t.ops[i].type);
    EXPECT_EQ(t2.ops[i].file, t.ops[i].file);
    EXPECT_EQ(t2.ops[i].a, t.ops[i].a);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("1.0 frobnicate 1 2 3\n");
  EXPECT_THROW(bf::Trace::load(ss), std::runtime_error);
}

TEST(Trace, PlayerTriggersTimeBasedCps) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;       // only the 10 s trigger applies
  fo.cp_interval_seconds = 10.0;
  fo.dedup_fraction = 0.05;
  bf::FileSystem fs(env, fo);
  bf::TraceSynthOptions o;
  o.hours = 0.5;  // 30 minutes
  o.ops_per_second_peak = 5;
  o.seed = 21;
  const auto trace = bf::synthesize_eecs03_like(o);
  ASSERT_FALSE(trace.ops.empty());
  bf::TracePlayer player(fs, 0);
  const auto hours = player.play(trace);
  ASSERT_FALSE(hours.empty());
  EXPECT_GT(fs.stats().cps_taken, 10u);  // many 10 s windows had activity
  EXPECT_GT(hours.front().block_ops, 0u);
  EXPECT_TRUE(bf::verify_backrefs(fs).ok);
}

TEST(Trace, PlayerHourCallbacksFire) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bf::FsimOptions fo;
  fo.dedup_fraction = 0;
  bf::FileSystem fs(env, fo);
  bf::TraceSynthOptions o;
  o.hours = 3;
  o.ops_per_second_peak = 2;
  o.seed = 8;
  const auto trace = bf::synthesize_eecs03_like(o);
  bf::TracePlayer player(fs, 0);
  std::vector<std::uint64_t> seen;
  const auto hours =
      player.play(trace, [&](std::uint64_t h) { seen.push_back(h); });
  EXPECT_EQ(seen.size(), hours.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}
