// Multi-tenant service throughput: aggregate update ops/s and p99 query
// latency as a function of shard count and tenant count.
//
// Two sweeps on the same synthetic, skewed workload (tenant i receives a
// 1/sqrt(i+1) share of the op budget, so early tenants are several times
// louder than the tail — the many-tenants-skewed-load scenario):
//
//   (a) shards in {1, 2, 4, 8} at 16 tenants — shard scaling; the service
//       target is >= 2x aggregate throughput from 1 -> 4 shards on a
//       multi-core host (thread-per-shard cannot scale on a single core);
//   (b) tenants in {1, 4, 16, 64} at 4 shards — tenant-density scaling;
//   (c) migration churn at 4 shards / 16 tenants — a churn thread keeps
//       live-migrating every volume around the shard ring while the
//       workload runs, measuring what placement changes cost the p99 query
//       latency (churn period 0 = the no-migration baseline);
//   (d) noisy neighbor at 1 shard — one hot tenant co-located with small
//       victims, with and without a TenantQos on the hog: victim p99 query
//       latency is the isolation metric;
//   (e) balancer A/B at 4 shards — every volume forced onto shard 0, then
//       the same workload with the Balancer off vs on: aggregate ops/s,
//       p99, moves made and the final imbalance metric;
//   (f) clone cost — copy-on-write clone_volume vs the legacy full byte
//       copy across a >= 16x spread of volume sizes: CoW clone latency must
//       be O(metadata), i.e. essentially flat in volume size, while the
//       copy path grows linearly (the speedup column is the headline).
//
// Queries run interleaved with updates (1 per 64 ops) and background
// maintenance is active throughout, so p99 query latency reflects
// query-while-maintenance interference, not an idle system.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"

using namespace backlog;

namespace {

struct ConfigResult {
  std::size_t shards = 0;
  std::size_t tenants = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t queries = 0;
  std::uint64_t maintenance_runs = 0;
  std::uint64_t migrations = 0;
  std::uint64_t churn_period_ms = 0;
  bool batched = false;
  bool pinned = false;
  double wall_seconds = 0;
  double ops_per_second = 0;
  std::uint64_t p99_query_micros = 0;
  std::uint64_t p50_query_micros = 0;
  std::string query_latency_buckets;  ///< "le:count,..." from to_buckets()
};

/// Compact "le:count,le:count,..." encoding of the recorded distribution —
/// the same buckets the Prometheus exporter emits, so offline analysis of a
/// bench capture can recompute any quantile instead of trusting p50/p99.
std::string bucket_string(const service::LatencyHistogram& h) {
  std::string out;
  for (const service::HistogramBucket& b : h.to_buckets()) {
    if (!out.empty()) out += ",";
    out += b.le_micros == UINT64_MAX ? "inf" : std::to_string(b.le_micros);
    out += ":" + std::to_string(b.count);
  }
  return out;
}

ConfigResult run_config(std::size_t shards, std::size_t tenants,
                        std::uint64_t total_ops_budget,
                        std::uint64_t churn_period_ms = 0,
                        bool use_batch = false) {
  storage::TempDir dir("backlog_svc");
  service::ServiceOptions so;
  so.shards = shards;
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = 2000;
  so.sync_writes = false;
  so.pin_shards = true;  // first-come NUMA/core placement; state is reported
  service::VolumeManager vm(so);

  service::MaintenancePolicy policy;
  policy.l0_run_threshold = 24;
  policy.budget_per_sweep = std::max<std::size_t>(1, shards / 2);
  policy.poll_interval = std::chrono::milliseconds(10);
  service::MaintenanceScheduler scheduler(vm, policy);

  // Skewed op budget: share(i) ~ 1/sqrt(i+1).
  std::vector<double> share(tenants);
  double share_sum = 0;
  for (std::size_t i = 0; i < tenants; ++i) {
    share[i] = 1.0 / std::sqrt(static_cast<double>(i + 1));
    share_sum += share[i];
  }

  std::vector<fsim::TenantWorkload> workloads;
  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < tenants; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "tenant-%03zu", i);
    vm.open_volume(name);
    fsim::TenantTraceOptions to;
    to.block_ops = std::max<std::uint64_t>(
        500, static_cast<std::uint64_t>(
                 static_cast<double>(total_ops_budget) * share[i] / share_sum));
    to.remove_fraction = 0.4;
    to.seed = 7000 + i;
    workloads.push_back({name, fsim::synthesize_tenant_trace(to)});
    total_ops += workloads.back().trace.ops.size();
  }

  fsim::ReplayOptions ro;
  ro.batch_ops = 256;
  ro.use_apply_batch = use_batch;
  ro.ops_per_cp = 2000;
  ro.query_every_ops = 64;

  // Migration churn: one placement thread rotates every volume to the next
  // shard each period. Sequential per sweep, so per-volume migrations never
  // overlap; everything else (updates, queries, maintenance) keeps running.
  std::atomic<bool> stop_churn{false};
  std::atomic<std::uint64_t> migrations{0};
  std::thread churn;
  if (churn_period_ms > 0) {
    churn = std::thread([&] {
      while (!stop_churn.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(churn_period_ms));
        for (const auto& wl : workloads) {
          if (stop_churn.load(std::memory_order_acquire)) break;
          try {
            const std::size_t target =
                (vm.current_shard(wl.tenant) + 1) % vm.shard_count();
            if (vm.migrate_volume(wl.tenant, target).moved) {
              migrations.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::exception&) {
            // A volume can be mid-close at shutdown; churn is best-effort.
          }
        }
      }
    });
  }

  // Stop the churn even if the replay throws: a joinable thread at unwind
  // would std::terminate and mask the real failure (and the churn thread
  // must not outlive vm).
  struct ChurnGuard {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~ChurnGuard() {
      stop.store(true, std::memory_order_release);
      if (thread.joinable()) thread.join();
    }
  } churn_guard{stop_churn, churn};

  const double t0 = bench::now_seconds();
  const auto results = fsim::replay_concurrently(vm, workloads, ro);
  const double wall = bench::now_seconds() - t0;
  stop_churn.store(true, std::memory_order_release);
  if (churn.joinable()) churn.join();
  scheduler.stop();

  ConfigResult r;
  r.shards = shards;
  r.tenants = tenants;
  r.batched = use_batch;
  r.pinned = vm.shards_pinned();
  r.migrations = migrations.load();
  r.churn_period_ms = churn_period_ms;
  r.total_ops = total_ops;
  r.wall_seconds = wall;
  r.ops_per_second = wall > 0 ? static_cast<double>(total_ops) / wall : 0;
  for (const auto& tr : results) r.queries += tr.queries;
  const service::ServiceStats stats = vm.stats();
  r.maintenance_runs = stats.total.maintenance_runs;
  r.p99_query_micros = stats.total.query_micros.p99();
  r.p50_query_micros = stats.total.query_micros.p50();
  r.query_latency_buckets = bucket_string(stats.total.query_micros);
  return r;
}

void report(const ConfigResult& r) {
  std::printf("%7zu %8zu %10llu %8.2f %12.0f %10llu %10llu %8llu %8llu\n",
              r.shards, r.tenants, static_cast<unsigned long long>(r.total_ops),
              r.wall_seconds, r.ops_per_second,
              static_cast<unsigned long long>(r.p50_query_micros),
              static_cast<unsigned long long>(r.p99_query_micros),
              static_cast<unsigned long long>(r.maintenance_runs),
              static_cast<unsigned long long>(r.migrations));
  bench::JsonRow()
      .str("bench", "service_throughput")
      .num("shards", static_cast<std::uint64_t>(r.shards))
      .num("tenants", static_cast<std::uint64_t>(r.tenants))
      .num("batched", r.batched ? 1 : 0)
      .num("total_ops", r.total_ops)
      .num("wall_seconds", r.wall_seconds)
      .num("ops_per_second", r.ops_per_second)
      .num("p50_query_micros", r.p50_query_micros)
      .num("p99_query_micros", r.p99_query_micros)
      .num("maintenance_runs", r.maintenance_runs)
      .num("queries", r.queries)
      .num("migrations", r.migrations)
      .num("churn_period_ms", r.churn_period_ms)
      .num("hardware_concurrency", std::thread::hardware_concurrency())
      .num("pinned", r.pinned ? 1 : 0)
      .str("query_latency_buckets", r.query_latency_buckets)
      .print();
}

void header_row() {
  std::printf("%7s %8s %10s %8s %12s %10s %10s %8s %8s\n", "shards", "tenants",
              "ops", "wall_s", "ops/s", "p50_q_us", "p99_q_us", "maint",
              "migr");
}

// --- sweep (d): noisy neighbor ------------------------------------------------

/// One hot tenant and `victims` small tenants on a single shard; when
/// `qos_on`, the hog is rate-limited (generous wait queue: backpressure
/// without rejections, so the replay completes). Returns via printf/JSONROW.
void run_noisy_neighbor(std::uint64_t budget, bool qos_on) {
  storage::TempDir dir("backlog_nn");
  service::ServiceOptions so;
  so.shards = 1;  // forced co-location: isolation must come from QoS alone
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = 2000;
  service::VolumeManager vm(so);

  fsim::FleetOptions fo;
  fo.tenants = 4;
  fo.total_ops = budget;
  fo.shape = fsim::FleetShape::kHotTenant;
  fo.hot_share = 0.7;
  fo.seed = 11;
  fo.base.remove_fraction = 0.4;
  auto workloads = fsim::synthesize_fleet(fo);
  for (const auto& wl : workloads) vm.open_volume(wl.tenant);
  const std::string hog = workloads[0].tenant;

  if (qos_on) {
    service::TenantQos qos;
    qos.ops_per_sec = static_cast<double>(budget) / 4;  // ~halve the hog
    qos.burst_ops = 2048;
    qos.max_wait_queue = 1 << 20;
    vm.set_qos(hog, qos);
  }

  fsim::ReplayOptions ro;
  ro.batch_ops = 256;
  ro.ops_per_cp = 2000;
  ro.query_every_ops = 32;

  const double t0 = bench::now_seconds();
  const auto results = fsim::replay_concurrently(vm, workloads, ro);
  const double wall = bench::now_seconds() - t0;

  std::uint64_t total_ops = 0;
  for (const auto& r : results) total_ops += r.ops;
  const service::ServiceStats stats = vm.stats();
  // Victim view: merge every tenant but the hog. Queue wait is the
  // isolation metric — execution time is flat either way.
  service::LatencyHistogram victim_q;
  for (const auto& [name, ts] : stats.tenants) {
    if (name != hog) victim_q.merge(ts.queue_wait_micros);
  }
  const std::uint64_t victim_p99 = victim_q.p99();
  const std::uint64_t hog_p99 = stats.tenants.at(hog).queue_wait_micros.p99();
  std::printf("  qos=%d  ops/s %9.0f  victim p99 wait %6llu us  hog p99 wait "
              "%6llu us  throttled %llu\n",
              qos_on ? 1 : 0, wall > 0 ? total_ops / wall : 0,
              static_cast<unsigned long long>(victim_p99),
              static_cast<unsigned long long>(hog_p99),
              static_cast<unsigned long long>(stats.total.throttle_queued));
  bench::JsonRow()
      .str("bench", "service_noisy_neighbor")
      .num("qos", qos_on ? 1 : 0)
      .num("total_ops", total_ops)
      .num("wall_seconds", wall)
      .num("ops_per_second", wall > 0 ? total_ops / wall : 0)
      .num("victim_p99_wait_micros", victim_p99)
      .num("hog_p99_wait_micros", hog_p99)
      .num("throttle_queued", stats.total.throttle_queued)
      .num("throttle_rejected", stats.total.throttle_rejected)
      .print();
}

// --- sweep (e): balancer A/B --------------------------------------------------

void run_balancer_ab(std::uint64_t budget, bool balancer_on) {
  storage::TempDir dir("backlog_bal");
  service::ServiceOptions so;
  so.shards = 4;
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = 2000;
  service::VolumeManager vm(so);

  fsim::FleetOptions fo;
  fo.tenants = 12;
  fo.total_ops = budget;
  fo.seed = 23;
  fo.base.remove_fraction = 0.4;
  auto workloads = fsim::synthesize_fleet(fo);
  for (const auto& wl : workloads) {
    vm.open_volume(wl.tenant);
    // Worst-case initial placement: everything on shard 0.
    vm.migrate_volume(wl.tenant, 0);
  }

  service::BalancerPolicy bp;
  bp.poll_interval = std::chrono::milliseconds(20);
  bp.cooldown = std::chrono::milliseconds(200);
  bp.max_moves_per_cycle = 2;
  service::Balancer balancer(vm, bp);
  if (balancer_on) balancer.start();

  fsim::ReplayOptions ro;
  ro.batch_ops = 256;
  ro.ops_per_cp = 2000;
  ro.query_every_ops = 64;

  const double t0 = bench::now_seconds();
  const auto results = fsim::replay_concurrently(vm, workloads, ro);
  const double wall = bench::now_seconds() - t0;
  balancer.stop();

  std::uint64_t total_ops = 0;
  for (const auto& r : results) total_ops += r.ops;
  const service::ServiceStats stats = vm.stats();
  const std::uint64_t p99 = stats.total.query_micros.p99();
  std::printf("  balancer=%d  ops/s %9.0f  p99 %6llu us  moves %llu"
              "  imbalance %.3f\n",
              balancer_on ? 1 : 0, wall > 0 ? total_ops / wall : 0,
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(balancer.moves()),
              balancer.last_imbalance());
  bench::JsonRow()
      .str("bench", "service_balancer_ab")
      .num("balancer", balancer_on ? 1 : 0)
      .num("total_ops", total_ops)
      .num("wall_seconds", wall)
      .num("ops_per_second", wall > 0 ? total_ops / wall : 0)
      .num("p99_query_micros", p99)
      .num("balancer_moves", balancer.moves())
      .num("final_imbalance", balancer.last_imbalance())
      .print();
}

// --- sweep (g): pure-dispatch (no-op) microbench ------------------------------

/// Isolates the queue-boundary overhead the batching work attacks: `total`
/// no-op "ops" are pushed through a 1-shard WorkerPool either as one task
/// per op (the unbatched path's shape: every op crosses the queue alone) or
/// as one task per `batch` ops (the apply_batch shape: the crossing is
/// amortized). The op body is a relaxed counter increment, so the measured
/// per-op nanos are almost purely enqueue + dequeue + type-erasure cost —
/// no BacklogDb work. The regression gate holds the single/batched ratio
/// (>= 3x), which is machine-independent.
void run_dispatch_overhead(std::uint64_t total, std::size_t batch) {
  const std::size_t per_task = batch == 0 ? 1 : batch;
  const std::uint64_t tasks = total / per_task;
  std::atomic<std::uint64_t> done{0};

  const double t0 = bench::now_seconds();
  double wall = 0;
  {
    service::WorkerPool pool(1, /*bg_starvation_limit=*/8);
    // Windowed backpressure: fence every 4096 tasks so the queue depth
    // stays bounded — an unbounded producer would balloon the ring to the
    // full op count and the measurement would charge ring growth (and at
    // paper scale, hundreds of MB) to "dispatch overhead".
    constexpr std::uint64_t kWindow = 4096;
    for (std::uint64_t submitted = 0; submitted < tasks;) {
      const std::uint64_t window = std::min(kWindow, tasks - submitted);
      for (std::uint64_t i = 0; i < window; ++i) {
        pool.submit(0, [&done, per_task] {
          for (std::size_t j = 0; j < per_task; ++j)
            done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      submitted += window;
      // Sentinel after the flow-0 FIFO: its future resolving means every
      // prior task of the window ran.
      std::promise<void> fence;
      std::future<void> fenced = fence.get_future();
      pool.submit(0, [&fence] { fence.set_value(); });
      fenced.get();
    }
    wall = bench::now_seconds() - t0;
  }

  const std::uint64_t ops = tasks * per_task;
  const double nanos_per_op =
      ops > 0 ? wall * 1e9 / static_cast<double>(ops) : 0;
  std::printf("  mode=%-7s ops %10llu  tasks %10llu  wall %6.3f s  "
              "%8.1f ns/op\n",
              per_task == 1 ? "single" : "batched",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(tasks), wall, nanos_per_op);
  bench::JsonRow()
      .str("bench", "service_dispatch")
      .str("mode", per_task == 1 ? "single" : "batched")
      .num("ops", ops)
      .num("batch", static_cast<std::uint64_t>(per_task))
      .num("wall_seconds", wall)
      .num("nanos_per_op", nanos_per_op)
      .print();
}

// --- sweep (f): clone cost — CoW vs full copy ---------------------------------

/// Builds one `src` volume of ~`ops` block operations (committed and
/// compacted, so the durable state is settled), then measures clone_volume
/// with the given mode. CoW clones are timed as the min of three
/// clone+destroy rounds (the operation is sub-millisecond; min-of-3 shields
/// the flatness signal from scheduler noise); the full copy is timed once.
double measure_clone_micros(std::uint64_t ops, bool cow,
                            std::uint64_t* db_bytes_out,
                            std::uint64_t* shared_bytes_out) {
  storage::TempDir dir("backlog_clone");
  service::ServiceOptions so;
  so.shards = 2;
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = 2000;
  so.sync_writes = false;
  so.cow_clone = cow;
  service::VolumeManager vm(so);
  vm.open_volume("src");

  std::uint64_t next_block = 1;
  while (next_block <= ops) {
    std::vector<service::UpdateOp> batch;
    for (int i = 0; i < 2000 && next_block <= ops; ++i) {
      service::UpdateOp op;
      op.kind = service::UpdateOp::Kind::kAdd;
      op.key.block = next_block++;
      op.key.inode = 2;
      op.key.length = 1;
      batch.push_back(op);
    }
    vm.apply("src", std::move(batch)).get();
    vm.consistency_point("src").get();
  }
  vm.maintain("src").get();
  const core::Epoch snap = vm.take_snapshot("src").get();
  if (db_bytes_out != nullptr)
    *db_bytes_out = vm.quick_stats("src").get().db_bytes;

  double best = 0;
  const int rounds = cow ? 3 : 1;
  for (int r = 0; r < rounds; ++r) {
    const std::string dst = "dst" + std::to_string(r);
    const double t0 = bench::now_seconds();
    vm.clone_volume("src", dst, 0, snap);
    const double micros = (bench::now_seconds() - t0) * 1e6;
    if (r == 0 || micros < best) best = micros;
    if (shared_bytes_out != nullptr && r == 0) {
      const auto stats = vm.shared_files().stats();
      *shared_bytes_out = stats.shared_bytes;
    }
    vm.destroy_volume(dst);
  }
  return best;
}

void run_clone_cost(const std::vector<std::uint64_t>& sizes) {
  std::printf("%10s %12s %14s %14s %9s %8s\n", "ops", "db_bytes",
              "cow_clone_us", "copy_clone_us", "speedup", "shared%");
  double cow_min = 0, cow_max = 0, largest_speedup = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::uint64_t ops = sizes[i];
    std::uint64_t db_bytes = 0, shared_bytes = 0;
    const double cow_us = measure_clone_micros(ops, /*cow=*/true, &db_bytes,
                                               &shared_bytes);
    const double copy_us =
        measure_clone_micros(ops, /*cow=*/false, nullptr, nullptr);
    const double speedup = cow_us > 0 ? copy_us / cow_us : 0;
    const double shared_ratio =
        db_bytes > 0 ? static_cast<double>(shared_bytes) /
                           static_cast<double>(db_bytes)
                     : 0;
    std::printf("%10llu %12llu %14.0f %14.0f %8.1fx %7.0f%%\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(db_bytes), cow_us, copy_us,
                speedup, shared_ratio * 100);
    bench::JsonRow()
        .str("bench", "service_clone_cost")
        .num("ops", ops)
        .num("db_bytes", db_bytes)
        .num("clone_micros_cow", cow_us)
        .num("clone_micros_copy", copy_us)
        .num("speedup", speedup)
        .num("shared_bytes", shared_bytes)
        .num("shared_ratio", shared_ratio)
        .print();
    if (i == 0) cow_min = cow_max = cow_us;
    cow_min = std::min(cow_min, cow_us);
    cow_max = std::max(cow_max, cow_us);
    if (i + 1 == sizes.size()) largest_speedup = speedup;
  }
  std::printf(
      "\nCoW clone flatness across %.0fx size spread: %.2fx (target <= 2x); "
      "speedup at largest size: %.1fx (target >= 10x)\n",
      static_cast<double>(sizes.back()) / static_cast<double>(sizes.front()),
      cow_min > 0 ? cow_max / cow_min : 0, largest_speedup);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "service_throughput — multi-tenant volume service scaling",
      "new scenario axis (no paper counterpart): shard + tenant scaling",
      scale);
  {
    // One throwaway pool answers "did pinning take?" for the header line
    // (run_config reports the same state per row).
    service::WorkerPool probe(1, 8, 16, /*pin_threads=*/true);
    std::printf("host hardware concurrency: %u, shard pinning: %s\n\n",
                std::thread::hardware_concurrency(),
                probe.pinned() ? "on" : "off (unsupported platform)");
  }

  // Per-sweep op budget; BACKLOG_BENCH_SCALE=1 restores the full size.
  const std::uint64_t budget = 4096000 / scale.divisor;

  std::printf("sweep (a): shards at 16 tenants, %llu total ops\n",
              static_cast<unsigned long long>(budget));
  header_row();
  double ops_1_shard = 0, ops_4_shards = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ConfigResult r = run_config(shards, 16, budget);
    report(r);
    if (shards == 1) ops_1_shard = r.ops_per_second;
    if (shards == 4) ops_4_shards = r.ops_per_second;
  }
  if (ops_1_shard > 0) {
    std::printf("\n1 -> 4 shard speedup: %.2fx (target >= 2x on >= 4 cores)\n",
                ops_4_shards / ops_1_shard);
  }

  std::printf("\nsweep (a2): same shard sweep through the batched verb "
              "(apply_batch, 256 ops/batch)\n");
  header_row();
  double batched_1 = 0, batched_4 = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ConfigResult r =
        run_config(shards, 16, budget, /*churn_period_ms=*/0,
                   /*use_batch=*/true);
    report(r);
    if (shards == 1) batched_1 = r.ops_per_second;
    if (shards == 4) batched_4 = r.ops_per_second;
  }
  if (batched_1 > 0) {
    std::printf("\nbatched 1 -> 4 shard speedup: %.2fx (gated >= 2x on >= 4 "
                "cores); batched vs unbatched at 4 shards: %.2fx\n",
                batched_4 / batched_1,
                ops_4_shards > 0 ? batched_4 / ops_4_shards : 0);
  }

  std::printf("\nsweep (b): tenants at 4 shards\n");
  header_row();
  for (const std::size_t tenants : {1u, 4u, 16u, 64u}) {
    report(run_config(4, tenants, budget));
  }

  std::printf(
      "\nsweep (c): migration churn at 4 shards / 16 tenants "
      "(period 0 = no churn baseline)\n");
  header_row();
  std::uint64_t p99_baseline = 0, p99_churn = 0;
  for (const std::uint64_t period_ms : {0ull, 50ull, 10ull}) {
    const ConfigResult r = run_config(4, 16, budget, period_ms);
    report(r);
    if (period_ms == 0) p99_baseline = r.p99_query_micros;
    if (period_ms == 10) p99_churn = r.p99_query_micros;
  }
  if (p99_baseline > 0) {
    std::printf("\np99 query latency under 10 ms churn: %llu us vs %llu us "
                "baseline (%.2fx)\n",
                static_cast<unsigned long long>(p99_churn),
                static_cast<unsigned long long>(p99_baseline),
                static_cast<double>(p99_churn) /
                    static_cast<double>(p99_baseline));
  }

  std::printf(
      "\nsweep (d): noisy neighbor at 1 shard, hot tenant with/without QoS\n");
  run_noisy_neighbor(budget / 4, /*qos_on=*/false);
  run_noisy_neighbor(budget / 4, /*qos_on=*/true);

  std::printf(
      "\nsweep (e): balancer A/B at 4 shards, all volumes starting on shard "
      "0\n");
  run_balancer_ab(budget / 2, /*balancer_on=*/false);
  run_balancer_ab(budget / 2, /*balancer_on=*/true);

  std::printf(
      "\nsweep (f): clone cost — copy-on-write vs full copy over a 16x "
      "volume-size spread\n");
  run_clone_cost({budget / 16, budget / 4, budget});

  std::printf(
      "\nsweep (g): pure-dispatch microbench — queue overhead per op, one "
      "task per op vs one task per 256 ops\n");
  run_dispatch_overhead(budget, /*batch=*/1);
  run_dispatch_overhead(budget, /*batch=*/256);
  return 0;
}
