// Figure 6 reproduction: back-reference database size as a percentage of the
// physical data size, over time, for three maintenance cadences.
//
// Paper result: without maintenance the meta-data grows toward ~20%+ of the
// data; with maintenance every 100 or 200 CPs it saw-tooths and the
// *post-maintenance floor stays flat at 2.5-3.5%* — space overhead does not
// creep up as the file system ages. Compaction shrinks the database 30-50%.
//
// Scaled: the paper's 1000 CPs -> 360 CPs here, maintenance every 100/200 ->
// every 36/72 CPs (same number of maintenance events per experiment).
#include <cinttypes>

#include "bench_common.hpp"

using namespace backlog;

namespace {
void run_arm(const bench::Scale& scale, std::uint64_t maintain_every,
             const char* label) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                      bench::paper_backlog_options(scale));
  fsim::WorkloadOptions wl;
  wl.seed = 1;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  fsim::SnapshotScheduler snaps(fs, 0, bench::paper_snapshot_policy());
  fsim::ClonePolicy cp_policy;
  fsim::CloneChurner clones(fs, 0, cp_policy, wl);

  const std::uint64_t total_cps = 360;
  std::printf("\n--- %s ---\n", label);
  std::printf("%8s %14s %14s %10s\n", "cp", "db_bytes", "data_bytes",
              "overhead%");
  double floor_after_maintenance = -1;
  for (std::uint64_t cp = 1; cp <= total_cps; ++cp) {
    gen.run_block_writes(fs.options().ops_per_cp);
    fs.consistency_point();
    // Maintenance runs on a freshly committed CP (empty write store); the
    // snapshot/clone churn below dirties the WS for the next CP.
    if (maintain_every > 0 && cp % maintain_every == 0) {
      fs.db().maintain();
      const double pct = 100.0 * fs.db().stats().db_bytes /
                         static_cast<double>(fs.stats().data_bytes());
      floor_after_maintenance = pct;
    }
    snaps.on_cp(cp);
    clones.on_cp(snaps.hourly());
    if (cp % 30 == 0) {
      const auto db_bytes = fs.db().stats().db_bytes;
      const auto data = fs.stats().data_bytes();
      std::printf("%8" PRIu64 " %14" PRIu64 " %14" PRIu64 " %9.2f%%\n", cp,
                  db_bytes, data, 100.0 * db_bytes / static_cast<double>(data));
    }
  }
  if (floor_after_maintenance >= 0) {
    std::printf("post-maintenance floor: %.2f%% (paper: 2.5-3.5%%)\n",
                floor_after_maintenance);
  }
}
}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 6: space overhead vs time (synthetic workload)",
      "maintenance drops overhead to a flat 2.5-3.5% floor; 30-50% shrink",
      scale);
  run_arm(scale, 0, "no maintenance");
  run_arm(scale, 72, "maintenance every 72 CPs (paper: every 200)");
  run_arm(scale, 36, "maintenance every 36 CPs (paper: every 100)");
  return 0;
}
