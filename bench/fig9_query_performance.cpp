// Figure 9 reproduction: query performance as a function of run length
// (sequentiality) and of the number of CPs since the last maintenance.
//
// Paper result (cold caches, worst case):
//   * best case ~36,000 queries/s for highly sequential runs right after
//     maintenance;
//   * single-back-reference random queries: 290 q/s right after
//     maintenance, degrading to 43-197 q/s as un-compacted Level-0 runs
//     accumulate;
//   * I/O reads per query drop steeply with run length (neighbouring
//     queries share leaf pages) and rise with CPs-since-maintenance (more
//     run files to probe).
//
// Scaled: the paper's 1000-CP workload -> 240 CPs; "N CPs since
// maintenance" arms at 0/60/120/240 CPs and a never-maintained arm;
// 2048 queries per point (paper: 8192).
#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench_common.hpp"

using namespace backlog;

namespace {

struct Arm {
  std::uint64_t cps_after_maintenance;  // workload CPs after the maintain()
  bool maintain_at_all;
  const char* label;
};

struct Point {
  double qps;
  double reads_per_query;
};

Point measure(fsim::FileSystem& fs, storage::Env& env, std::uint64_t run_len,
              std::uint64_t num_queries, util::Rng& rng) {
  // §6.4 methodology: a run of length n starts at a randomly selected block
  // and issues n consecutive single-back-reference queries. Total query
  // count is held constant across run lengths, so every cell does the same
  // amount of work and the run length changes only *locality*.
  const std::uint64_t num_runs = std::max<std::uint64_t>(1, num_queries / run_len);
  std::vector<core::BlockNo> starts;
  const std::uint64_t limit =
      std::max<std::uint64_t>(2, fs.max_block() > run_len ? fs.max_block() - run_len
                                                          : 2);
  for (std::uint64_t r = 0; r < num_runs; ++r)
    starts.push_back(1 + rng.below(limit));

  fs.db().clear_cache();  // cold cache: worst case (§6.4)
  const storage::IoStats io_before = env.stats();
  const double t0 = bench::now_seconds();
  std::uint64_t queries = 0;
  for (const core::BlockNo start : starts) {
    for (std::uint64_t i = 0; i < run_len; ++i) {
      (void)fs.db().query(start + i);
      ++queries;
    }
  }
  const double dt = bench::now_seconds() - t0;
  const storage::IoStats io_delta = env.stats() - io_before;
  Point p;
  p.qps = static_cast<double>(queries) / dt;
  p.reads_per_query =
      static_cast<double>(io_delta.page_reads) / static_cast<double>(queries);
  return p;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 9: query throughput and I/O reads vs run length x staleness",
      "36k q/s sequential post-maintenance; 43-290 q/s random; reads/query "
      "falls with run length",
      scale);

  const std::uint64_t total_cps = 240;
  const Arm arms[] = {
      {0, true, "right after maintenance"},
      {60, true, "60 CPs since maintenance (paper: 200)"},
      {120, true, "120 CPs since maintenance (paper: 400)"},
      {240, false, "never maintained (paper: no maintenance)"},
  };
  const std::uint64_t run_lengths[] = {1, 4, 16, 64, 256, 1024};
  const std::uint64_t queries_per_point = 2048;

  std::printf("%-44s", "arm \\ run length");
  for (const auto rl : run_lengths) std::printf(" %10" PRIu64, rl);
  std::printf("\n");

  for (const Arm& arm : arms) {
    storage::TempDir dir;
    storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
    fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                        bench::paper_backlog_options(scale));
    fsim::WorkloadOptions wl;
    wl.seed = 3;
    fsim::WorkloadGenerator gen(fs, 0, wl);
    fsim::SnapshotScheduler snaps(fs, 0, bench::paper_snapshot_policy());
    for (std::uint64_t cp = 1; cp <= total_cps; ++cp) {
      gen.run_block_writes(fs.options().ops_per_cp);
      fs.consistency_point();
      snaps.on_cp(cp);
      if (arm.maintain_at_all && cp == total_cps - arm.cps_after_maintenance) {
        fs.db().maintain();
      }
    }
    util::Rng rng(99);
    std::printf("%-44s", arm.label);
    std::vector<Point> points;
    for (const auto rl : run_lengths) {
      points.push_back(measure(fs, env, rl, queries_per_point, rng));
      std::printf(" %10.0f", points.back().qps);
    }
    std::printf("  q/s\n%-44s", "");
    for (const Point& p : points) std::printf(" %10.2f", p.reads_per_query);
    std::printf("  reads/query\n");
  }

  std::printf(
      "\ncheck: q/s grows with run length; the post-maintenance arm beats the\n"
      "stale arms at every run length; reads/query falls with run length and\n"
      "rises with staleness. Paper peaks at ~36k q/s / ~290 q/s random.\n");
  return 0;
}
