// Wire-protocol overhead: closed-loop apply_batch throughput and latency,
// in-process vs over a loopback TCP connection to the epoll server.
//
// Both modes run the identical workload against the identical VolumeManager
// configuration; the only difference is whether a batch travels through
// vm.apply_batch(...).get() directly or is framed, CRC'd, written to a
// socket, decoded by an I/O thread and answered with a response frame. The
// ratio of the two is therefore the cost of the wire protocol itself —
// machine speed cancels out, which is what the regression gate keys on.
//
// Sweeps (each emits one JSONROW per mode):
//   * batch in {1, 256} at 1 connection — per-call overhead vs amortized;
//   * 4 connections at batch 256 — multiple I/O threads and sockets.
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/handlers.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

using namespace backlog;

namespace {

service::UpdateOp add_op(std::uint64_t block) {
  service::UpdateOp op;
  op.kind = service::UpdateOp::Kind::kAdd;
  op.key.block = block;
  op.key.inode = 2;
  op.key.length = 1;
  return op;
}

std::string conn_tenant(std::size_t i) {
  char name[32];
  std::snprintf(name, sizeof name, "conn-%02zu", i);
  return name;
}

struct ModeResult {
  std::uint64_t total_ops = 0;
  double wall_seconds = 0;
  std::vector<std::uint64_t> call_micros;  ///< one entry per apply_batch call

  [[nodiscard]] double ops_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(total_ops) / wall_seconds : 0;
  }
  [[nodiscard]] std::uint64_t percentile(double p) {
    if (call_micros.empty()) return 0;
    std::sort(call_micros.begin(), call_micros.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(call_micros.size() - 1));
    return call_micros[idx];
  }
};

/// Runs `connections` closed-loop worker threads, each applying
/// `ops_per_conn` single-tenant add ops in batches of `batch` via `call`
/// (which hides whether the path is in-process or a socket). Per-call wall
/// time lands in ModeResult::call_micros.
template <typename CallFn>
ModeResult run_closed_loop(std::size_t connections, std::size_t batch,
                           std::uint64_t ops_per_conn, CallFn&& call) {
  std::vector<std::vector<std::uint64_t>> lat(connections);
  const double t0 = bench::now_seconds();
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      lat[c].reserve(ops_per_conn / batch + 1);
      std::vector<service::UpdateOp> ops;
      ops.reserve(batch);
      std::uint64_t next_block = 1;
      for (std::uint64_t sent = 0; sent < ops_per_conn;) {
        ops.clear();
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch, ops_per_conn - sent));
        for (std::size_t i = 0; i < n; ++i) ops.push_back(add_op(next_block++));
        const double c0 = bench::now_seconds();
        call(c, ops);
        lat[c].push_back(
            static_cast<std::uint64_t>((bench::now_seconds() - c0) * 1e6));
        sent += n;
      }
    });
  }
  for (auto& t : workers) t.join();

  ModeResult r;
  r.wall_seconds = bench::now_seconds() - t0;
  r.total_ops = ops_per_conn * connections;
  for (auto& v : lat)
    r.call_micros.insert(r.call_micros.end(), v.begin(), v.end());
  return r;
}

void emit(const char* mode, std::size_t connections, std::size_t batch,
          ModeResult r) {
  const std::uint64_t p50 = r.percentile(0.50);
  const std::uint64_t p99 = r.percentile(0.99);
  std::printf("  %-10s conns=%zu batch=%-4zu  ops/s %10.0f   p50 %6llu us   "
              "p99 %6llu us\n",
              mode, connections, batch, r.ops_per_second(),
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99));
  bench::JsonRow()
      .str("bench", "net_loopback")
      .str("mode", mode)
      .num("connections", connections)
      .num("batch", batch)
      .num("total_ops", r.total_ops)
      .num("wall_seconds", r.wall_seconds)
      .num("ops_per_second", r.ops_per_second())
      .num("p50_us", p50)
      .num("p99_us", p99)
      .print();
}

void run_config(std::size_t connections, std::size_t batch,
                std::uint64_t ops_per_conn) {
  // Fresh state per config so earlier runs' compaction debt cannot bleed
  // into later measurements. Same ServiceOptions for both modes.
  const auto make_vm = [](const storage::TempDir& dir) {
    service::ServiceOptions so;
    so.shards = 2;
    so.root = dir.path();
    so.sync_writes = false;
    return std::make_unique<service::VolumeManager>(so);
  };

  {
    storage::TempDir dir("backlog_netbench");
    auto vm = make_vm(dir);
    for (std::size_t c = 0; c < connections; ++c)
      vm->open_volume(conn_tenant(c));
    ModeResult r = run_closed_loop(
        connections, batch, ops_per_conn,
        [&](std::size_t c, const std::vector<service::UpdateOp>& ops) {
          vm->apply_batch(conn_tenant(c), ops).get();
        });
    for (std::size_t c = 0; c < connections; ++c)
      vm->consistency_point(conn_tenant(c));
    emit("inprocess", connections, batch, std::move(r));
  }

  {
    storage::TempDir dir("backlog_netbench");
    auto vm = make_vm(dir);
    net::ServiceEndpoint endpoint(*vm);
    net::ServerOptions opts;
    opts.port = 0;  // ephemeral loopback port
    opts.io_threads = 2;
    endpoint.start(opts);

    std::vector<net::Client> clients(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      clients[c].connect("127.0.0.1", endpoint.port());
      clients[c].open_volume(conn_tenant(c));
    }
    ModeResult r = run_closed_loop(
        connections, batch, ops_per_conn,
        [&](std::size_t c, const std::vector<service::UpdateOp>& ops) {
          clients[c].apply_batch(conn_tenant(c), ops);
        });
    for (std::size_t c = 0; c < connections; ++c)
      clients[c].consistency_point(conn_tenant(c));
    endpoint.stop();
    emit("loopback", connections, batch, std::move(r));
  }
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  // Default quick mode (divisor 16): 16k ops per connection — a couple of
  // seconds per config on a laptop; BACKLOG_BENCH_SCALE=1 for paper scale.
  const std::uint64_t ops_per_conn =
      std::max<std::uint64_t>(2048, 262144 / scale.divisor);

  std::printf("net_loopback: wire-protocol overhead, in-process vs loopback "
              "TCP (%llu ops/connection)\n",
              static_cast<unsigned long long>(ops_per_conn));
  run_config(/*connections=*/1, /*batch=*/1, ops_per_conn / 8);
  run_config(/*connections=*/1, /*batch=*/256, ops_per_conn);
  run_config(/*connections=*/4, /*batch=*/256, ops_per_conn);
  return 0;
}
