// google-benchmark microbenchmarks of the individual mechanisms: write-store
// updates (the paper's §6.2 finding is that >95% of Backlog's overhead is
// CPU time spent updating the WS), Bloom filter probes, run-file writes,
// join throughput, B+-tree updates, and end-to-end point queries.
#include <benchmark/benchmark.h>

#include "core/backlog_db.hpp"
#include "core/join.hpp"
#include "core/write_store.hpp"
#include "lsm/run_file.hpp"
#include "storage/btree.hpp"
#include "storage/env.hpp"
#include "util/bloom.hpp"
#include "util/random.hpp"
#include "util/serde.hpp"

using namespace backlog;

namespace {

core::BackrefKey make_key(std::uint64_t b, std::uint64_t ino = 2,
                          std::uint64_t off = 0) {
  core::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.offset = off;
  k.length = 1;
  k.line = 0;
  return k;
}

void BM_WriteStoreAdd(benchmark::State& state) {
  core::WriteStore ws;
  std::uint64_t b = 0;
  for (auto _ : state) {
    ws.add_reference(make_key(b++), 1);
    if (ws.from_size() > 100000) {
      state.PauseTiming();
      ws.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteStoreAdd);

void BM_WriteStorePrunedChurn(benchmark::State& state) {
  // add+remove of the same key in one CP: the §5.1 annihilation fast path.
  core::WriteStore ws;
  std::uint64_t b = 0;
  for (auto _ : state) {
    ws.add_reference(make_key(b), 1);
    ws.remove_reference(make_key(b), 1);
    ++b;
  }
  if (ws.from_size() != 0 || ws.to_size() != 0) state.SkipWithError("leak");
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WriteStorePrunedChurn);

void BM_BloomInsertProbe(benchmark::State& state) {
  util::BloomFilter f = util::BloomFilter::sized_for(32000);
  std::uint64_t k = 0;
  for (auto _ : state) {
    f.insert(k);
    benchmark::DoNotOptimize(f.may_contain(k ^ 1));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsertProbe);

void BM_RunWriterThroughput(benchmark::State& state) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  std::uint64_t file_no = 0;
  const std::size_t n = 50000;
  std::vector<std::uint8_t> rec(core::kFromRecordSize);
  for (auto _ : state) {
    lsm::RunWriter w(env, "bm_" + std::to_string(file_no++) + ".run",
                     core::kFromRecordSize, n);
    for (std::uint64_t i = 0; i < n; ++i) {
      core::encode_from({make_key(i), 1}, rec.data());
      w.add(rec, i);
    }
    w.finish();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * core::kFromRecordSize);
}
BENCHMARK(BM_RunWriterThroughput)->Unit(benchmark::kMillisecond);

void BM_JoinGroup(benchmark::State& state) {
  const std::vector<core::Epoch> froms = {1, 10, 20, 30, 40};
  const std::vector<core::Epoch> tos = {5, 15, 25, 35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::join_group(make_key(9), froms, tos));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinGroup);

void BM_BTreePut(benchmark::State& state) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  storage::BTree tree(env, "bm.btree", 8, 8, 4096);
  util::Rng rng(1);
  std::uint8_t kbuf[8], vbuf[8];
  for (auto _ : state) {
    util::put_be64(kbuf, rng.next());
    util::put_u64(vbuf, 1);
    tree.put({kbuf, 8}, {vbuf, 8});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePut);

void BM_BacklogUpdatePath(benchmark::State& state) {
  // The headline number: cost of one add_reference on the live system,
  // including its amortized share of CP flushes every 32000/16 ops.
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  core::BacklogDb db(env);
  std::uint64_t b = 0, since_cp = 0;
  for (auto _ : state) {
    db.add_reference(make_key(b++ % 100000, 2 + b % 7, b % 64));
    if (++since_cp == 2000) {
      db.consistency_point();
      since_cp = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BacklogUpdatePath)->MinTime(1.0);

void BM_BacklogPointQuery(benchmark::State& state) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  core::BacklogDb db(env);
  for (int cp = 0; cp < 20; ++cp) {
    for (std::uint64_t i = 0; i < 2000; ++i)
      db.add_reference(make_key((cp * 2000 + i) % 20000, 2, i));
    db.consistency_point();
  }
  db.maintain();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query(rng.below(20000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BacklogPointQuery);

void BM_BacklogRangeQuery(benchmark::State& state) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  core::BacklogDb db(env);
  for (int cp = 0; cp < 20; ++cp) {
    for (std::uint64_t i = 0; i < 2000; ++i)
      db.add_reference(make_key((cp * 2000 + i) % 20000, 2, i));
    db.consistency_point();
  }
  db.maintain();
  const std::uint64_t run = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query(rng.below(20000 - run), run));
  }
  state.SetItemsProcessed(state.iterations() * run);
}
BENCHMARK(BM_BacklogRangeQuery)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
