// Figure 8 reproduction: space overhead over the NFS-trace replay for three
// maintenance cadences (none / every 48 h / every 8 h).
//
// Paper result: overhead grows without maintenance; with it, it saw-tooths
// and settles at a flat 6.1-6.3% floor — higher than the synthetic
// workload's floor because the trace does not delete whole snapshot lines,
// so less history is purgeable. Maintenance completed in <25 s per run.
//
// Scaled: a 48-hour trace with maintenance every 16 h / every 4 h (same
// events-per-trace ratio as the paper's 384 h with 48 h / 8 h).
#include <cinttypes>

#include "bench_common.hpp"
#include "fsim/trace.hpp"
#include "fsim/workload.hpp"

using namespace backlog;

namespace {
void run_arm(const bench::Scale& scale, const fsim::Trace& trace,
             std::uint64_t maintain_every_hours, const char* label) {
  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                      bench::paper_backlog_options(scale));
  // The trace workload retains 4 hourly + 4 nightly snapshots like the
  // paper's filer; scheduled per simulated hour here.
  fsim::SnapshotPolicy sp;
  sp.hourly_every_cps = 1;   // interpreted per *hour* below
  sp.keep_hourly = 4;
  sp.nightly_every_cps = 24;
  sp.keep_nightly = 4;
  fsim::SnapshotScheduler snaps(fs, 0, sp);

  double max_maintenance_s = 0;
  double floor_pct = -1;
  std::printf("\n--- %s ---\n", label);
  std::printf("%6s %14s %14s %10s\n", "hour", "db_bytes", "data_bytes",
              "overhead%");
  fsim::TracePlayer player(fs, 0);
  const auto hours = player.play(trace, [&](std::uint64_t hour_index) {
    snaps.on_cp(hour_index + 1);
    if (maintain_every_hours > 0 &&
        (hour_index + 1) % maintain_every_hours == 0) {
      fs.consistency_point();  // maintenance requires an empty write store
      const double t0 = bench::now_seconds();
      fs.db().maintain();
      max_maintenance_s = std::max(max_maintenance_s, bench::now_seconds() - t0);
      floor_pct = 100.0 * fs.db().stats().db_bytes /
                  static_cast<double>(fs.stats().data_bytes());
    }
  });
  for (std::size_t i = 0; i < hours.size(); i += 4) {
    const auto& h = hours[i];
    if (h.data_bytes == 0) continue;
    std::printf("%6.0f %14" PRIu64 " %14" PRIu64 " %9.2f%%\n", h.hour,
                h.db_bytes, h.data_bytes,
                100.0 * h.db_bytes / static_cast<double>(h.data_bytes));
  }
  if (floor_pct >= 0) {
    std::printf("post-maintenance floor: %.2f%%  (paper: 6.1-6.3%%)\n", floor_pct);
    std::printf("slowest maintenance run: %.2f s (paper: <25 s)\n",
                max_maintenance_s);
  }
}
}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 8: NFS-trace space overhead vs time, by maintenance cadence",
      "flat 6.1-6.3% floor with maintenance; grows without", scale);
  fsim::TraceSynthOptions to;
  to.hours = 48;
  to.ops_per_second_peak = 24.0 * 16.0 / static_cast<double>(scale.divisor);
  to.seed = 2003;
  const fsim::Trace trace = fsim::synthesize_eecs03_like(to);
  std::printf("trace: %zu ops over %.0f simulated hours\n", trace.ops.size(),
              to.hours);
  run_arm(scale, trace, 0, "no maintenance");
  run_arm(scale, trace, 16, "maintenance every 16 h (paper: every 48 h)");
  run_arm(scale, trace, 4, "maintenance every 4 h (paper: every 8 h)");
  return 0;
}
