// §8 future-work evaluation: column-wise compression of the back-reference
// tables.
//
// Paper: "Our tables of back reference records appear to be highly
// compressible, especially if we compress them by columns. Compression will
// cost additional CPU cycles, which must be carefully balanced against the
// expected improvements in the space overhead."
//
// This bench generates realistic From and Combined buffers from an aged
// fsim workload and measures exactly that balance: compression ratio per
// table vs. encode/decode cost per record.
#include <cinttypes>

#include "bench_common.hpp"
#include "lsm/column_codec.hpp"

using namespace backlog;

namespace {
void report(const char* label, const std::vector<std::uint8_t>& raw,
            std::size_t record_size) {
  if (raw.empty()) {
    std::printf("%-24s (empty)\n", label);
    return;
  }
  const std::size_t n = raw.size() / record_size;
  double t0 = bench::now_seconds();
  const auto blob = lsm::compress_columns(raw, record_size);
  const double enc_s = bench::now_seconds() - t0;
  t0 = bench::now_seconds();
  const auto back = lsm::decompress_columns(blob);
  const double dec_s = bench::now_seconds() - t0;
  if (back != raw) {
    std::printf("%-24s ROUND-TRIP MISMATCH\n", label);
    return;
  }
  std::printf("%-24s %10zu %12zu %12zu %7.2fx %10.0f %10.0f\n", label, n,
              raw.size(), blob.size(),
              static_cast<double>(raw.size()) / static_cast<double>(blob.size()),
              enc_s * 1e9 / static_cast<double>(n),
              dec_s * 1e9 / static_cast<double>(n));
}
}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Ablation (sec 8): column-wise compression of back-reference tables",
      "tables are highly compressible by columns; CPU cost must stay small",
      scale);

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);
  fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                      bench::paper_backlog_options(scale));
  fsim::WorkloadOptions wl;
  wl.seed = 7;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  fsim::SnapshotScheduler snaps(fs, 0, bench::paper_snapshot_policy());

  // Age the volume and capture one CP's worth of WS buffers (the Level-0
  // run payload) before the final flush.
  for (std::uint64_t cp = 1; cp <= 80; ++cp) {
    gen.run_block_writes(fs.options().ops_per_cp);
    fs.consistency_point();
    snaps.on_cp(cp);
  }
  gen.run_block_writes(fs.options().ops_per_cp);
  // Reach into the db via its public scan for Combined; rebuild a From
  // buffer from the raw records (sorted, as the run writer would see it).
  const auto combined = fs.db().scan_all();
  std::vector<std::uint8_t> combined_buf(combined.size() *
                                         core::kCombinedRecordSize);
  std::vector<std::uint8_t> from_buf;
  for (std::size_t i = 0; i < combined.size(); ++i) {
    core::encode_combined(combined[i],
                          combined_buf.data() + i * core::kCombinedRecordSize);
    if (combined[i].to == core::kInfinity) {
      const std::size_t b = from_buf.size();
      from_buf.resize(b + core::kFromRecordSize);
      core::encode_from({combined[i].key, combined[i].from}, from_buf.data() + b);
    }
  }

  std::printf("%-24s %10s %12s %12s %8s %10s %10s\n", "table", "records",
              "raw_bytes", "compressed", "ratio", "enc_ns/rec", "dec_ns/rec");
  report("From (incomplete)", from_buf, core::kFromRecordSize);
  report("Combined (full)", combined_buf, core::kCombinedRecordSize);

  std::printf(
      "\ncheck: ratios well above 3x (sorted block column deltas are tiny and\n"
      "inode/line/length columns are highly repetitive); codec cost tens of\n"
      "ns per record, i.e. negligible next to the ~150 ns WS update path.\n");
  return 0;
}
