// Shared plumbing for the reproduction benches: scaled paper configurations
// and consistent table printing. Every bench binary prints (a) the scale
// factors it uses relative to the paper, (b) the measured series/rows, and
// (c) the paper's target numbers next to ours where applicable, so
// EXPERIMENTS.md can be regenerated from bench output alone.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

#include "core/backlog_db.hpp"
#include "fsim/fsim.hpp"
#include "fsim/workload.hpp"
#include "storage/env.hpp"
#include "util/json.hpp"

namespace backlog::bench {

/// The paper's WAFL configuration and the factor this repo scales it by so
/// that every bench finishes in seconds on a laptop. Overridable via the
/// BACKLOG_BENCH_SCALE environment variable (1 = paper scale where it makes
/// sense, 16 = default quick mode).
struct Scale {
  std::uint64_t paper_ops_per_cp = 32000;
  std::uint64_t divisor = 16;

  [[nodiscard]] std::uint64_t ops_per_cp() const {
    return paper_ops_per_cp / divisor;  // default: 2000
  }

  static Scale from_env() {
    Scale s;
    if (const char* e = std::getenv("BACKLOG_BENCH_SCALE")) {
      const long v = std::atol(e);
      if (v >= 1) s.divisor = static_cast<std::uint64_t>(v);
    }
    return s;
  }
};

/// fsim options matching §6.1 at the chosen scale: CP every ops_per_cp
/// writes or 10 s, 10% dedup with the measured sharing skew.
inline fsim::FsimOptions paper_fsim_options(const Scale& s,
                                            std::uint64_t seed = 42) {
  fsim::FsimOptions o;
  o.ops_per_cp = s.ops_per_cp();
  o.cp_interval_seconds = 10.0;
  o.dedup_fraction = 0.10;
  o.dedup_zipf_alpha = 1.15;
  o.rng_seed = seed;
  return o;
}

/// Backlog options matching §5.1/§6.1 at the chosen scale.
inline core::BacklogOptions paper_backlog_options(const Scale& s) {
  core::BacklogOptions o;
  o.expected_ops_per_cp = s.ops_per_cp();
  o.bloom_max_bytes = 32 * 1024 / s.divisor * 16;  // keep the paper's 8 b/key
  o.combined_bloom_max_bytes = 1024 * 1024;
  o.cache_pages = 8192;  // 32 MB (§6.1)
  return o;
}

/// The paper's snapshot policy (4 hourly + 4 nightly) expressed in CPs at
/// the chosen scale: one "hour" is hourly_every_cps consistency points.
inline fsim::SnapshotPolicy paper_snapshot_policy() {
  fsim::SnapshotPolicy p;
  p.hourly_every_cps = 6;
  p.keep_hourly = 4;
  p.nightly_every_cps = 48;
  p.keep_nightly = 4;
  return p;
}

/// One machine-readable result row. Benches print their human tables as
/// before and additionally emit one `JSONROW {...}` line per data point, so
/// downstream tooling can `grep ^JSONROW` and parse without knowing each
/// bench's table layout.
class JsonRow {
 public:
  JsonRow& str(const char* key, const std::string& value) {
    sep();
    body_ += '"';
    body_ += key;  // keys are compile-time literals: plain identifiers
    body_ += "\":\"";
    // Values reach here from user-controlled surfaces (tenant and scenario
    // names in fleet_sim rows), so they are escaped: a name with a quote or
    // backslash must still parse as JSON downstream.
    body_ += util::json_escape(value);
    body_ += '"';
    return *this;
  }

  JsonRow& num(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return raw(key, buf);
  }

  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  JsonRow& num(const char* key, T value) {
    char buf[32];
    if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(value));
    }
    return raw(key, buf);
  }

  void print() const { std::printf("JSONROW {%s}\n", body_.c_str()); }

 private:
  JsonRow& raw(const char* key, const char* value) {
    sep();
    body_ += '"';
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }
  void sep() {
    if (!body_.empty()) body_ += ',';
  }

  std::string body_;
};

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void print_header(const char* experiment, const char* paper_claim,
                         const Scale& s) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("scale: %llu ops/CP (paper: %llu; divisor %llu)\n",
              static_cast<unsigned long long>(s.ops_per_cp()),
              static_cast<unsigned long long>(s.paper_ops_per_cp),
              static_cast<unsigned long long>(s.divisor));
  std::printf("================================================================\n");
}

}  // namespace backlog::bench
