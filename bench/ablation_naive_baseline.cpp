// §4.1 ablation: the naive "conceptual table" design vs Backlog.
//
// Paper claim: "We ran experiments with this approach and found that the
// file system slowed down to a crawl after only a few hundred consistency
// points." The cause is the read-modify-write per deallocation: once the
// table outgrows the buffer cache, every remove needs a disk read, and the
// scattered dirty pages defeat the sequential-write advantage of the log.
//
// We drive both designs with the identical fsim workload and report, per
// 10-CP bucket: page *reads* per block op (Backlog: always 0), page writes
// per block op, and wall-clock µs per op. Watch the naive columns grow with
// database size while Backlog's stay flat.
#include <cinttypes>

#include "baseline/naive_backrefs.hpp"
#include "bench_common.hpp"

using namespace backlog;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Ablation (sec 4.1): naive conceptual table vs Backlog",
      "naive slows to a crawl after a few hundred CPs; Backlog stays flat",
      scale);

  fsim::FsimOptions fo = bench::paper_fsim_options(scale);
  fo.ops_per_cp = 1000;  // smaller CPs: more CPs in the same wall budget
  const std::uint64_t total_cps = 120;
  const std::uint64_t bucket = 20;

  // Arm 1: naive conceptual table with a deliberately bounded cache (the
  // paper's point is the behaviour once the table exceeds memory).
  storage::TempDir dir_naive;
  storage::Env env_naive(dir_naive.path());
  env_naive.set_sync(false);  // measure the algorithm, not the host disk
  baseline::NaiveOptions nopts;
  nopts.cache_pages = 512;  // 2 MB
  baseline::NaiveBackrefs naive(env_naive, nopts);
  fsim::FileSystem fs_naive(fo, naive);
  fsim::WorkloadOptions wl;
  wl.seed = 9;
  fsim::WorkloadGenerator gen_naive(fs_naive, 0, wl);

  // Arm 2: Backlog on the identical workload.
  storage::TempDir dir_backlog;
  storage::Env env_backlog(dir_backlog.path());
  env_backlog.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FileSystem fs_backlog(env_backlog, fo, bench::paper_backlog_options(scale));
  fsim::WorkloadGenerator gen_backlog(fs_backlog, 0, wl);

  std::printf("%8s | %12s %12s %10s | %12s %12s %10s\n", "cp", "naive_rd/op",
              "naive_wr/op", "naive_us", "bklg_rd/op", "bklg_wr/op", "bklg_us");

  auto run_bucket = [&](fsim::FileSystem& fs, fsim::WorkloadGenerator& gen,
                        storage::Env& env, double out[3]) {
    const storage::IoStats before = env.stats();
    const double t0 = bench::now_seconds();
    std::uint64_t ops = 0;
    for (std::uint64_t i = 0; i < bucket; ++i) {
      gen.run_block_writes(fo.ops_per_cp);
      ops += fs.consistency_point().block_ops;
    }
    const double dt = bench::now_seconds() - t0;
    const storage::IoStats d = env.stats() - before;
    out[0] = static_cast<double>(d.page_reads) / static_cast<double>(ops);
    out[1] = static_cast<double>(d.page_writes) / static_cast<double>(ops);
    out[2] = dt * 1e6 / static_cast<double>(ops);
  };

  for (std::uint64_t cp = bucket; cp <= total_cps; cp += bucket) {
    double n[3], b[3];
    run_bucket(fs_naive, gen_naive, env_naive, n);
    run_bucket(fs_backlog, gen_backlog, env_backlog, b);
    std::printf("%8" PRIu64 " | %12.4f %12.4f %10.2f | %12.4f %12.4f %10.2f\n",
                cp, n[0], n[1], n[2], b[0], b[1], b[2]);
  }
  std::printf(
      "\ncheck: naive reads/op rises from ~0 toward ~1 per deallocation as\n"
      "the table outgrows its cache, and naive us/op grows with cp; Backlog\n"
      "reads/op is exactly 0 and its us/op is flat.\n");
  return 0;
}
