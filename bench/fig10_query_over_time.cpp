// Figure 10 reproduction: query performance over the lifetime of the file
// system, measured just before (left plot) and immediately after (right
// plot) each periodic maintenance run.
//
// Paper result: maintenance improves throughput by more than an order of
// magnitude (right plot up to ~45k q/s vs ~1.5k before maintenance), and —
// the key observation — once the database reaches a certain size, query
// throughput *levels off* even as the database keeps growing.
//
// Scaled: the paper's 1000 CPs with maintenance every 100 -> 240 CPs with
// maintenance every 40; run lengths 1024..8192 -> 256..2048.
#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench_common.hpp"

using namespace backlog;

namespace {
double qps(fsim::FileSystem& fs, std::uint64_t run_len,
           std::uint64_t num_queries, util::Rng& rng) {
  // §6.4 runs: each starts at a random block and issues run_len consecutive
  // single-back-reference queries.
  const std::uint64_t num_runs = std::max<std::uint64_t>(1, num_queries / run_len);
  std::vector<core::BlockNo> starts;
  const std::uint64_t limit = std::max<std::uint64_t>(
      2, fs.max_block() > run_len ? fs.max_block() - run_len : 2);
  for (std::uint64_t r = 0; r < num_runs; ++r) starts.push_back(1 + rng.below(limit));
  fs.db().clear_cache();
  std::uint64_t queries = 0;
  const double t0 = bench::now_seconds();
  for (const core::BlockNo start : starts) {
    for (std::uint64_t i = 0; i < run_len; ++i) {
      (void)fs.db().query(start + i);
      ++queries;
    }
  }
  return static_cast<double>(queries) / (bench::now_seconds() - t0);
}
}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 10: query throughput over time, before vs after maintenance",
      ">10x gain from maintenance; throughput levels off as the db grows",
      scale);

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                      bench::paper_backlog_options(scale));
  fsim::WorkloadOptions wl;
  wl.seed = 3;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  fsim::SnapshotScheduler snaps(fs, 0, bench::paper_snapshot_policy());

  const std::uint64_t total_cps = 240;
  const std::uint64_t maintain_every = 40;
  const std::uint64_t run_lengths[] = {256, 512, 1024, 2048};
  const std::uint64_t queries_per_point = 4096;
  util::Rng rng(1234);

  std::printf("%8s %10s |", "cp", "phase");
  for (const auto rl : run_lengths) std::printf(" %9" PRIu64, rl);
  std::printf("   (q/s by run length)\n");

  for (std::uint64_t cp = 1; cp <= total_cps; ++cp) {
    gen.run_block_writes(fs.options().ops_per_cp);
    fs.consistency_point();
    snaps.on_cp(cp);
    if (cp % maintain_every == 0) {
      std::printf("%8" PRIu64 " %10s |", cp, "before");
      for (const auto rl : run_lengths)
        std::printf(" %9.0f", qps(fs, rl, queries_per_point, rng));
      std::printf("\n");
      fs.db().maintain();
      std::printf("%8" PRIu64 " %10s |", cp, "after");
      for (const auto rl : run_lengths)
        std::printf(" %9.0f", qps(fs, rl, queries_per_point, rng));
      std::printf("   db=%.1f MB\n",
                  fs.db().stats().db_bytes / (1024.0 * 1024.0));
    }
  }
  std::printf(
      "\ncheck: 'after' rows sit several times above 'before' rows (paper: >10x\n"
      "on 2009 disks; a warm page cache compresses the gap here);\n"
      "both series flatten out over cp even though db bytes keep growing.\n");
  return 0;
}
