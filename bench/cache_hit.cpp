// Cache-hit A/B: service-wide shared block cache vs the legacy per-volume
// caches at a *matched total byte budget*, on the workload the shared design
// targets — a clone-heavy fleet whose volumes hard-link the same physical
// run files.
//
// One base volume is filled and snapshotted, then cloned CoW N-1 times; a
// round-robin query sweep then touches every volume. Under the shared cache
// a page read through any volume is a hit for all of them ((st_dev, st_ino)
// keying dedups the hard links by construction), so the working set is the
// *unique* physical pages. Split per volume, each private cache holds
// budget/N pages of a working set N times larger and thrashes.
//
// The result cache is disabled in both modes so every query exercises the
// block layer under test. Emits one JSONROW per mode:
//
//   JSONROW {"bench":"cache_hit","mode":"shared|pervol","volumes":...,
//            "budget_bytes":...,"queries":...,"hits":...,"misses":...,
//            "hit_ratio":...,"query_p50_us":...,"query_p99_us":...}
//
// tools/check_bench_regression.py gates on these rows: shared hit_ratio
// must strictly beat pervol, and shared query p99 must stay within 1.2x.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/service.hpp"
#include "storage/block_cache.hpp"
#include "storage/env.hpp"

namespace {

namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace bench = backlog::bench;

constexpr std::size_t kVolumes = 8;          // base + 7 CoW clones
constexpr std::uint64_t kBudgetPages = 64;  // total fleet budget, both modes
constexpr std::uint64_t kBlocks = 400;       // base volume: kBlocks * kCps keys
constexpr int kCps = 4;
constexpr int kSweeps = 3;
constexpr bc::BlockNo kStride = 7;

struct ModeResult {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_ratio = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

void fill_base(bsvc::VolumeManager& vm) {
  for (int cp = 0; cp < kCps; ++cp) {
    std::vector<bsvc::UpdateOp> batch;
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      bsvc::UpdateOp op;
      op.kind = bsvc::UpdateOp::Kind::kAdd;
      op.key.block = b * kCps + static_cast<std::uint64_t>(cp);
      op.key.inode = 2;
      op.key.length = 1;
      batch.push_back(op);
    }
    vm.apply_batch("vol0", std::move(batch)).get();
    vm.consistency_point("vol0").get();
  }
  vm.maintain("vol0").get();
}

/// Build the fleet, run the sweeps, read the counters. `shared` selects the
/// service-wide cache; otherwise each volume gets an equal slice of the
/// same byte budget through the deprecated cache_pages knob.
ModeResult run_mode(bool shared) {
  bs::TempDir dir("backlog_cache_hit");
  bsvc::ServiceOptions so;
  so.shards = 2;
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = kBlocks;
  so.sync_writes = false;
  so.cache.enable_result_cache = false;  // isolate the block layer
  if (shared) {
    so.cache.enable_block_cache = true;
    so.cache.capacity_bytes = kBudgetPages * bs::kPageSize;
    so.cache.block_cache_shards = 4;
  } else {
    so.cache.enable_block_cache = false;
    so.db_options.cache_pages = kBudgetPages / kVolumes;
  }
  bsvc::VolumeManager vm(so);

  vm.open_volume("vol0");
  fill_base(vm);
  const bc::Epoch snap = vm.take_snapshot("vol0").get();
  for (std::size_t v = 1; v < kVolumes; ++v) {
    vm.clone_volume("vol0", "vol" + std::to_string(v), 0, snap);
  }

  const std::uint64_t total_keys = kBlocks * kCps;
  ModeResult r;
  std::vector<std::uint64_t> lat_us;
  lat_us.reserve(kVolumes * (total_keys / kStride + 1));
  // Sweep 0 is the warm-up (its compulsory misses still count toward the
  // hit ratio — both modes pay the same set); the measured sweeps report
  // min-of-N percentiles, shielding the µs-scale tail from scheduler noise
  // the way the clone-cost bench does.
  for (int sweep = 0; sweep <= kSweeps; ++sweep) {
    lat_us.clear();
    for (bc::BlockNo b = 0; b < total_keys; b += kStride) {
      // Round-robin across volumes inside the sweep: the per-volume caches
      // see an interleaved stream (their worst case), the shared cache sees
      // the same physical page from eight doors (its best case).
      for (std::size_t v = 0; v < kVolumes; ++v) {
        const double t0 = bench::now_seconds();
        (void)vm.query("vol" + std::to_string(v), b).get();
        lat_us.push_back(
            static_cast<std::uint64_t>((bench::now_seconds() - t0) * 1e6));
      }
    }
    r.queries += lat_us.size();
    if (sweep == 0) continue;
    std::sort(lat_us.begin(), lat_us.end());
    const std::uint64_t p50 = lat_us[lat_us.size() / 2];
    const std::uint64_t p99 = lat_us[lat_us.size() * 99 / 100];
    if (sweep == 1 || p50 < r.p50_us) r.p50_us = p50;
    if (sweep == 1 || p99 < r.p99_us) r.p99_us = p99;
  }

  const auto block = vm.cache_stats().block;
  r.hits = block.hits;
  r.misses = block.misses;
  r.hit_ratio = block.hit_ratio();
  return r;
}

void report(const char* mode, const ModeResult& r) {
  std::printf("  %-7s  queries %7llu  hits/misses %8llu/%7llu  ratio %.3f"
              "  p50 %4llu us  p99 %5llu us\n",
              mode, static_cast<unsigned long long>(r.queries),
              static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.misses), r.hit_ratio,
              static_cast<unsigned long long>(r.p50_us),
              static_cast<unsigned long long>(r.p99_us));
  bench::JsonRow()
      .str("bench", "cache_hit")
      .str("mode", mode)
      .num("volumes", static_cast<std::uint64_t>(kVolumes))
      .num("budget_bytes", kBudgetPages * bs::kPageSize)
      .num("queries", r.queries)
      .num("hits", r.hits)
      .num("misses", r.misses)
      .num("hit_ratio", r.hit_ratio)
      .num("query_p50_us", r.p50_us)
      .num("query_p99_us", r.p99_us)
      .print();
}

}  // namespace

int main() {
  const auto scale = bench::Scale::from_env();
  bench::print_header(
      "cache_hit: shared block cache vs per-volume caches, matched budget",
      "shared (dev,ino) keying dedups CoW clones; per-volume split thrashes",
      scale);
  std::printf("fleet: %zu volumes (1 base + %zu CoW clones), budget %llu KiB"
              " total, result cache off\n",
              kVolumes, kVolumes - 1,
              static_cast<unsigned long long>(kBudgetPages * bs::kPageSize /
                                              1024));

  const ModeResult shared = run_mode(/*shared=*/true);
  report("shared", shared);
  const ModeResult pervol = run_mode(/*shared=*/false);
  report("pervol", pervol);

  std::printf("\nshared vs per-volume: hit ratio %.3f vs %.3f, p99 %llu vs"
              " %llu us\n",
              shared.hit_ratio, pervol.hit_ratio,
              static_cast<unsigned long long>(shared.p99_us),
              static_cast<unsigned long long>(pervol.p99_us));
  return 0;
}
