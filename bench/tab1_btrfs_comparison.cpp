// Table 1 reproduction: micro- and application benchmarks across the three
// back-reference configurations on an identical simulated file system:
//
//   Base     — no back references            (paper: btrfs with them removed)
//   Original — btrfs-style native back refs  (update-in-place metadata B-tree)
//   Backlog  — this paper's system
//
// Paper result: Backlog's overhead relative to Base is 0.6-11.2% on the
// microbenchmarks (worst on 4 KB create/delete at small CPs, best on 64 KB
// creates) and 1.5-2.1% on the application benchmarks — comparable to the
// natively-integrated btrfs implementation despite being general-purpose.
//
// Substitution note (DESIGN.md): our fsim does not write file data, so
// overhead is computed over *total pages written per operation*, where the
// base cost is the file system's own data+meta-data page writes — the same
// denominator the paper's elapsed-time ratios capture. Wall-clock per op is
// reported alongside.
#include <cinttypes>
#include <functional>
#include <memory>

#include "baseline/native_backrefs.hpp"
#include "bench_common.hpp"

using namespace backlog;

namespace {

struct RunResult {
  double pages_per_op = 0;  // backref pages + modeled FS pages, per file op
  double us_per_op = 0;     // wall time of workload + CP flushes, per file op
  std::uint64_t ops = 0;
};

// Modeled write-anywhere FS cost per consistency point, charged identically
// to every configuration: one page per dirty data block plus one meta-data
// page per 64 dirty blocks (inode/indirect amortization, the paper's 4 KB
// file = worst case of one meta page per data page is captured by small
// files touching distinct inodes).
std::uint64_t fs_pages_for(std::uint64_t dirty_blocks,
                           std::uint64_t files_touched) {
  return dirty_blocks + dirty_blocks / 64 + files_touched / 8 + 1;
}

enum class Config { kBase, kOriginal, kBacklog };
const char* config_name(Config c) {
  switch (c) {
    case Config::kBase: return "Base";
    case Config::kOriginal: return "Original";
    case Config::kBacklog: return "Backlog";
  }
  return "?";
}

RunResult run_micro(Config config, bool create_phase,
                    std::uint64_t file_blocks, std::uint64_t ops_per_cp,
                    std::uint64_t total_files) {
  fsim::FsimOptions fo;
  fo.ops_per_cp = 1000000;  // CPs taken manually every `ops_per_cp` file ops
  fo.dedup_fraction = 0;
  fo.rng_seed = 17;

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  std::unique_ptr<baseline::NativeBackrefs> native;
  std::unique_ptr<fsim::NullSink> null;
  std::unique_ptr<fsim::FileSystem> fs;
  if (config == Config::kBacklog) {
    fs = std::make_unique<fsim::FileSystem>(env, fo, core::BacklogOptions{});
  } else if (config == Config::kOriginal) {
    native = std::make_unique<baseline::NativeBackrefs>(env);
    fs = std::make_unique<fsim::FileSystem>(fo, *native);
  } else {
    null = std::make_unique<fsim::NullSink>();
    fs = std::make_unique<fsim::FileSystem>(fo, *null);
  }

  RunResult r;
  std::vector<fsim::InodeNo> files;
  files.reserve(total_files);

  // The delete phase operates on a pre-created population (not measured).
  if (!create_phase) {
    for (std::uint64_t i = 0; i < total_files; ++i)
      files.push_back(fs->create_file(0, file_blocks));
    fs->consistency_point();
  }

  const double t0 = bench::now_seconds();
  std::uint64_t backref_pages = 0;
  std::uint64_t dirty_since_cp = 0, files_since_cp = 0, fs_pages = 0;
  for (std::uint64_t i = 0; i < total_files; ++i) {
    if (create_phase) {
      files.push_back(fs->create_file(0, file_blocks));
      dirty_since_cp += file_blocks;
    } else {
      fs->delete_file(0, files[i]);
    }
    ++files_since_cp;
    ++r.ops;
    if (r.ops % ops_per_cp == 0 || i + 1 == total_files) {
      const auto s = fs->consistency_point();
      backref_pages += s.pages_written;
      fs_pages += fs_pages_for(dirty_since_cp, files_since_cp);
      dirty_since_cp = files_since_cp = 0;
    }
  }
  const double dt = bench::now_seconds() - t0;
  r.pages_per_op =
      static_cast<double>(fs_pages + backref_pages) / static_cast<double>(r.ops);
  r.us_per_op = dt * 1e6 / static_cast<double>(r.ops);
  return r;
}

RunResult run_app(Config config, const fsim::WorkloadOptions& wl,
                  std::uint64_t block_writes) {
  fsim::FsimOptions fo;
  fo.ops_per_cp = 2048;
  fo.dedup_fraction = 0.05;
  fo.rng_seed = 23;

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  std::unique_ptr<baseline::NativeBackrefs> native;
  std::unique_ptr<fsim::NullSink> null;
  std::unique_ptr<fsim::FileSystem> fs;
  if (config == Config::kBacklog) {
    fs = std::make_unique<fsim::FileSystem>(env, fo, core::BacklogOptions{});
  } else if (config == Config::kOriginal) {
    native = std::make_unique<baseline::NativeBackrefs>(env);
    fs = std::make_unique<fsim::FileSystem>(fo, *native);
  } else {
    null = std::make_unique<fsim::NullSink>();
    fs = std::make_unique<fsim::FileSystem>(fo, *null);
  }

  fsim::WorkloadGenerator gen(*fs, 0, wl);
  const double t0 = bench::now_seconds();
  std::uint64_t backref_pages = 0;
  std::uint64_t writes_done = 0;
  while (writes_done < block_writes) {
    gen.step();
    if (const auto s = fs->maybe_consistency_point()) {
      backref_pages += s->pages_written;
    }
    writes_done = fs->stats().block_writes;
  }
  const auto s = fs->consistency_point();
  backref_pages += s.pages_written;
  const double dt = bench::now_seconds() - t0;

  RunResult r;
  r.ops = fs->stats().block_writes + fs->stats().block_frees;
  const std::uint64_t fs_pages =
      fs_pages_for(fs->stats().block_writes, fs->stats().block_writes / 4);
  r.pages_per_op = static_cast<double>(fs_pages + backref_pages) /
                   static_cast<double>(r.ops);
  r.us_per_op = dt * 1e6 / static_cast<double>(r.ops);
  return r;
}

void print_row(const char* name, const RunResult& base, const RunResult& orig,
               const RunResult& backlog) {
  const double over_orig =
      100.0 * (orig.pages_per_op - base.pages_per_op) / base.pages_per_op;
  const double over_backlog =
      100.0 * (backlog.pages_per_op - base.pages_per_op) / base.pages_per_op;
  std::printf("%-34s %9.3f %9.3f %9.3f %9.1f%% %9.1f%%\n", name,
              base.pages_per_op, orig.pages_per_op, backlog.pages_per_op,
              over_orig, over_backlog);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Table 1: Base vs Original (btrfs-style) vs Backlog",
      "Backlog within 0.6-11.2% of Base on micro, 1.5-2.1% on app benches",
      scale);
  std::printf("(pages/op = modeled FS data+meta pages + measured backref pages)\n\n");
  std::printf("%-34s %9s %9s %9s %10s %10s\n", "benchmark", "Base", "Original",
              "Backlog", "ovh_Orig", "ovh_Bklg");

  const std::uint64_t n_files = 4096;
  struct Micro {
    const char* name;
    bool create;
    std::uint64_t blocks;
    std::uint64_t ops_per_cp;
  };
  const Micro micros[] = {
      {"create 4KB file (2048 ops/CP)", true, 1, 2048},
      {"create 64KB file (2048 ops/CP)", true, 16, 2048},
      {"delete 4KB file (2048 ops/CP)", false, 1, 2048},
      {"create 4KB file (8192 ops/CP)", true, 1, 8192},
      {"create 64KB file (8192 ops/CP)", true, 16, 8192},
      {"delete 4KB file (8192 ops/CP)", false, 1, 8192},
  };
  for (const Micro& m : micros) {
    const auto base =
        run_micro(Config::kBase, m.create, m.blocks, m.ops_per_cp, n_files);
    const auto orig =
        run_micro(Config::kOriginal, m.create, m.blocks, m.ops_per_cp, n_files);
    const auto backlog =
        run_micro(Config::kBacklog, m.create, m.blocks, m.ops_per_cp, n_files);
    print_row(m.name, base, orig, backlog);
  }

  struct App {
    const char* name;
    fsim::WorkloadOptions wl;
  };
  const App apps[] = {
      {"dbench-like (CIFS)", fsim::dbench_preset(5)},
      {"varmail-like (/var/mail)", fsim::varmail_preset(5)},
      {"postmark-like", fsim::postmark_preset(5)},
  };
  for (const App& a : apps) {
    const auto base = run_app(Config::kBase, a.wl, 60000);
    const auto orig = run_app(Config::kOriginal, a.wl, 60000);
    const auto backlog = run_app(Config::kBacklog, a.wl, 60000);
    print_row(a.name, base, orig, backlog);
  }

  std::printf(
      "\npaper overheads (Backlog vs Base): creates 0.6-7.9%%, deletes\n"
      "7.1-11.2%%, apps 1.5-2.1%%; Backlog comparable to Original throughout.\n"
      "check: ovh_Bklg small, larger at 2048 ops/CP than 8192, and of the\n"
      "same magnitude as ovh_Orig.\n");
  return 0;
}
