// Figure 5 reproduction: overhead of maintaining back references during
// normal operation under the synthetic workload.
//
// Paper result: ~0.010 4 KB page writes and ~8-9 µs per block operation,
// *stable over time* (the flat line is the headline: cost does not grow with
// file-system age). A copy-on-write (add + remove) therefore costs ~0.020
// page writes. >95% of the time overhead is CPU (write-store updates).
//
// We run the §6.2.1 workload — EECS03-like op mix, 90% small files, 10%
// dedup, 4+4 snapshot retention, ~7 clones per 100 CPs — and report the same
// two normalized series over global CP number.
#include <cinttypes>

#include "bench_common.hpp"
#include "fsim/verifier.hpp"

using namespace backlog;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 5: I/O and time overhead per block operation (synthetic)",
      "~0.010 page writes/op and ~8-9 us/op, flat as the file system ages",
      scale);

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FileSystem fs(env, bench::paper_fsim_options(scale),
                      bench::paper_backlog_options(scale));
  fsim::WorkloadOptions wl;
  wl.seed = 1;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  fsim::SnapshotScheduler snaps(fs, 0, bench::paper_snapshot_policy());
  fsim::ClonePolicy clone_policy;
  clone_policy.clones_per_cp = 0.07;  // §6.2.1: ~7 clones per 100 CPs
  fsim::CloneChurner clones(fs, 0, clone_policy, wl);

  const std::uint64_t total_cps = 300;
  const std::uint64_t report_every = 20;

  std::printf("%8s %14s %14s %12s %12s\n", "cp", "io_writes/op", "us/op",
              "ops", "clones");
  std::uint64_t bucket_ops = 0, bucket_pages = 0, bucket_micros = 0;
  for (std::uint64_t cp = 1; cp <= total_cps; ++cp) {
    gen.run_block_writes(fs.options().ops_per_cp);
    const fsim::SinkCpStats s = fs.consistency_point();
    bucket_ops += s.block_ops;
    bucket_pages += s.pages_written;
    bucket_micros += s.wall_micros;
    snaps.on_cp(cp);
    clones.on_cp(snaps.hourly());
    if (cp % report_every == 0) {
      std::printf("%8" PRIu64 " %14.4f %14.2f %12" PRIu64 " %12" PRIu64 "\n", cp,
                  static_cast<double>(bucket_pages) / bucket_ops,
                  static_cast<double>(bucket_micros) / bucket_ops, bucket_ops,
                  clones.clones_created());
      bucket_ops = bucket_pages = bucket_micros = 0;
    }
  }
  const double record_pages =
      static_cast<double>(core::kFromRecordSize) / storage::kPageSize;
  std::printf("\nanalytic floor: one 48-byte record per op = %.4f pages/op\n",
              record_pages);
  std::printf("paper: 0.010 writes/op, 8-9 us/op; a CoW pair costs 2x.\n");
  std::printf("check: the io_writes/op and us/op columns should be flat over cp.\n");
  return 0;
}
