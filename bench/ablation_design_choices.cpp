// Ablations of the §5 design choices DESIGN.md calls out:
//   1. Bloom filters on read-store runs (§5.1) — point-query I/O.
//   2. Proactive write-store pruning (§5.1)    — records materialized.
//   3. Horizontal partitioning (§5.3)          — run sizes and maintenance.
#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench_common.hpp"

using namespace backlog;

namespace {

void build_history(fsim::FileSystem& fs, std::uint64_t cps,
                   std::uint64_t ops_per_cp, std::uint64_t seed) {
  fsim::WorkloadOptions wl;
  wl.seed = seed;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  for (std::uint64_t cp = 0; cp < cps; ++cp) {
    gen.run_block_writes(ops_per_cp);
    fs.consistency_point();
  }
}

void bloom_ablation(const bench::Scale& scale) {
  std::printf("\n--- 1. Bloom filters (sec 5.1) ---\n");
  std::printf("%-14s %16s %16s %14s\n", "config", "reads/point-q", "q/s",
              "bloom bytes");
  for (const bool use_bloom : {true, false}) {
    storage::TempDir dir;
    storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
    core::BacklogOptions bo = bench::paper_backlog_options(scale);
    bo.use_bloom = use_bloom;
    bo.cache_pages = 0;  // count every page access
    fsim::FileSystem fs(env, bench::paper_fsim_options(scale), bo);
    build_history(fs, 60, 500, 7);

    util::Rng rng(5);
    const std::uint64_t n = 3000;
    const storage::IoStats before = env.stats();
    const double t0 = bench::now_seconds();
    for (std::uint64_t i = 0; i < n; ++i) {
      (void)fs.db().query(1 + rng.below(fs.max_block()));
    }
    const double dt = bench::now_seconds() - t0;
    const storage::IoStats d = env.stats() - before;
    std::uint64_t bloom_bytes = 0;  // resident filter footprint
    // (approximate: reported via DbStats run count x default size)
    std::printf("%-14s %16.2f %16.0f %14s\n",
                use_bloom ? "bloom on" : "bloom off",
                static_cast<double>(d.page_reads) / static_cast<double>(n),
                static_cast<double>(n) / dt, use_bloom ? "resident" : "-");
    (void)bloom_bytes;
  }
  std::printf("check: 'bloom on' needs several times fewer reads per point "
              "query.\n");
}

void pruning_ablation(const bench::Scale& scale) {
  std::printf("\n--- 2. Proactive WS pruning (sec 5.1) ---\n");
  std::printf("%-14s %16s %16s %12s\n", "config", "records_on_disk", "db_bytes",
              "us/op");
  for (const bool pruning : {true, false}) {
    storage::TempDir dir;
    storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
    core::BacklogOptions bo = bench::paper_backlog_options(scale);
    bo.pruning = pruning;
    fsim::FsimOptions fo = bench::paper_fsim_options(scale);
    fsim::FileSystem fs(env, fo, bo);
    // Truncate-heavy workload: most references die within their CP — the
    // case pruning exists for (the Fig. 7 dip).
    fsim::WorkloadOptions wl;
    wl.seed = 7;
    wl.w_truncate = 0.35;
    wl.w_overwrite = 0.45;
    wl.w_create = 0.15;
    wl.w_delete = 0.05;
    fsim::WorkloadGenerator gen(fs, 0, wl);
    const double t0 = bench::now_seconds();
    std::uint64_t ops = 0;
    for (int cp = 0; cp < 40; ++cp) {
      gen.run_block_writes(500);
      ops += fs.consistency_point().block_ops;
    }
    const double dt = bench::now_seconds() - t0;
    const auto s = fs.db().stats();
    std::printf("%-14s %16" PRIu64 " %16" PRIu64 " %12.2f\n",
                pruning ? "pruning on" : "pruning off", s.run_records,
                s.db_bytes, dt * 1e6 / static_cast<double>(ops));
  }
  std::printf("check: pruning writes meaningfully fewer records for churny "
              "workloads.\n");
}

void partition_ablation(const bench::Scale& scale) {
  std::printf("\n--- 3. Horizontal partitioning (sec 5.3) ---\n");
  std::printf("%-18s %12s %14s %16s %14s\n", "partition_blocks", "partitions",
              "largest_run", "maintenance_ms", "point q/s");
  for (const std::uint64_t pb : {1ull << 22, 1ull << 12, 1ull << 10}) {
    storage::TempDir dir;
    storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
    core::BacklogOptions bo = bench::paper_backlog_options(scale);
    bo.partition_blocks = pb;
    fsim::FileSystem fs(env, bench::paper_fsim_options(scale), bo);
    build_history(fs, 60, 500, 7);

    const double t0 = bench::now_seconds();
    fs.db().maintain();
    const double maintenance_ms = (bench::now_seconds() - t0) * 1e3;

    util::Rng rng(5);
    const double t1 = bench::now_seconds();
    const std::uint64_t n = 3000;
    for (std::uint64_t i = 0; i < n; ++i) {
      (void)fs.db().query(1 + rng.below(fs.max_block()));
    }
    const double qps = n / (bench::now_seconds() - t1);

    const auto s = fs.db().stats();
    // Largest single run file = the biggest item the compactor must rewrite.
    std::uint64_t largest = 0;
    for (const auto& name : env.list_files()) {
      if (name.ends_with(".run"))
        largest = std::max(largest, env.file_size(name));
    }
    std::printf("%-18" PRIu64 " %12" PRIu64 " %14" PRIu64 " %16.1f %14.0f\n",
                pb, s.partitions, largest, maintenance_ms, qps);
  }
  std::printf("check: smaller partitions bound the largest run file (the unit\n"
              "of selective compaction) at little cost to query throughput.\n");
}

}  // namespace

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header("Ablations: Bloom filters, WS pruning, partitioning",
                      "each sec-5 design choice pays for itself", scale);
  bloom_ablation(scale);
  pruning_ablation(scale);
  partition_ablation(scale);
  return 0;
}
