// fleet_sim — the fleet-scale scenario harness: open-loop load, per-tenant
// SLO gates, and chaos-under-verification.
//
// Open loop: the arrival schedule (Poisson gaps, Zipf tenant selection; see
// src/fsim/fleet_sim.hpp) is fixed up front and the dispatcher submits each
// batch at its scheduled instant without waiting for earlier work, so under
// overload the backlog grows inside the service, where the queue-wait
// histograms measure it — instead of silently slowing the driver down
// (coordinated omission).
//
// Calibration: "quiet" and "overload" are defined relative to the machine,
// not in absolute ops/s. A short closed-loop burst measures the service's
// capacity C, then the scenario offers `util * C` ops/s (quiet: util 0.25;
// overload: util 2.5 — 10x quiet, and >1 by a wide margin, so the queue
// grows for the whole scenario and p99 queue-wait approaches the scenario
// duration on any host). Pass --rate to skip calibration.
//
// Chaos mode (--chaos / --scenario chaos) runs, underneath the open-loop
// traffic: a ground-truth verifier fleet (synthesize_fleet +
// replay_concurrently, exact live_keys checked at the end), repeated shard
// worker kill/restart, forced explicit migrations, an aggressive Balancer,
// and snapshot/clone/destroy churn on dedicated volumes. Chaos also runs
// the full durability pipeline (group-commit WAL on every volume) and adds
// two rounds on top of the random kills: shard kills landed exactly when a
// shard's WAL pipeline passes an armed injection point (wal_appended,
// wal_synced, cp_flushed, registry_persisted, wal_truncated — the same five
// points the crash matrix forks at), and a wounded-volume round that arms a
// sticky EIO write fault on a dedicated volume, checks the degradation is
// graceful (writes fail with typed kWounded, reads keep serving), then
// heals it by reopen. The binary exits non-zero if the verifier diverges,
// any operation is dropped, or a wounded-volume check fails.
//
// Output: one JSONROW per QoS class (`row":"slo"`) plus config/fleet/chaos
// rows; tools/check_slo.py turns them into the CI gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fsim/fleet_sim.hpp"
#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace {

namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace bfs = backlog::fsim;
namespace bench = backlog::bench;
namespace util = backlog::util;

struct Config {
  std::string scenario = "quiet";  // quiet | overload | chaos
  std::size_t tenants = 96;
  std::size_t shards = 4;
  double duration_s = 2.0;
  double util = 0.0;        // 0 = scenario default
  double rate = 0.0;        // arrivals/s; 0 = calibrate
  std::size_t batch = 128;  // update ops per arrival
  double zipf_alpha = 1.1;
  std::uint64_t seed = 1;
  bool chaos = false;
  bool selftest_json = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario quiet|overload|chaos] [--chaos]\n"
      "          [--tenants N] [--shards N] [--duration-s X] [--util X]\n"
      "          [--rate ARRIVALS_PER_S] [--batch N] [--zipf-alpha X]\n"
      "          [--seed N] [--selftest-json]\n",
      argv0);
  std::exit(2);
}

Config parse_args(int argc, char** argv) {
  Config c;
  auto need = [&](int i) {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--scenario") == 0) {
      c.scenario = need(i++);
    } else if (std::strcmp(a, "--chaos") == 0) {
      c.scenario = "chaos";
    } else if (std::strcmp(a, "--tenants") == 0) {
      c.tenants = static_cast<std::size_t>(std::atoll(need(i++)));
    } else if (std::strcmp(a, "--shards") == 0) {
      c.shards = static_cast<std::size_t>(std::atoll(need(i++)));
    } else if (std::strcmp(a, "--duration-s") == 0) {
      c.duration_s = std::atof(need(i++));
    } else if (std::strcmp(a, "--util") == 0) {
      c.util = std::atof(need(i++));
    } else if (std::strcmp(a, "--rate") == 0) {
      c.rate = std::atof(need(i++));
    } else if (std::strcmp(a, "--batch") == 0) {
      c.batch = static_cast<std::size_t>(std::atoll(need(i++)));
    } else if (std::strcmp(a, "--zipf-alpha") == 0) {
      c.zipf_alpha = std::atof(need(i++));
    } else if (std::strcmp(a, "--seed") == 0) {
      c.seed = static_cast<std::uint64_t>(std::atoll(need(i++)));
    } else if (std::strcmp(a, "--selftest-json") == 0) {
      c.selftest_json = true;
    } else {
      usage(argv[0]);
    }
  }
  if (c.scenario != "quiet" && c.scenario != "overload" &&
      c.scenario != "chaos") {
    usage(argv[0]);
  }
  c.chaos = c.scenario == "chaos";
  if (c.util <= 0.0) {
    c.util = c.scenario == "overload" ? 2.5 : c.scenario == "chaos" ? 0.4
                                                                    : 0.25;
  }
  if (c.tenants == 0 || c.shards == 0 || c.batch == 0 || c.duration_s <= 0) {
    usage(argv[0]);
  }
  return c;
}

std::string tenant_name(std::size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "t%05zu", i);
  return buf;
}

/// Parse the index back out of an open-loop tenant name ("t00042"), for
/// classifying stats() rows; nullopt for verifier/churn volumes.
std::optional<std::size_t> tenant_index(const std::string& name) {
  if (name.size() < 2 || name[0] != 't') return std::nullopt;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
  }
  return static_cast<std::size_t>(std::atoll(name.c_str() + 1));
}

/// Per-tenant open-loop op source: monotonically increasing block numbers
/// (write-anywhere discipline), adds only — the verifier fleet covers
/// remove/snapshot semantics; this stream exists to apply load.
struct TenantState {
  std::uint64_t next_block = 0;
  std::uint64_t arrivals = 0;
};

std::vector<bsvc::UpdateOp> make_batch(TenantState& st, std::size_t ops) {
  std::vector<bsvc::UpdateOp> batch;
  batch.reserve(ops);
  for (std::size_t k = 0; k < ops; ++k) {
    bsvc::UpdateOp op;
    op.kind = bsvc::UpdateOp::Kind::kAdd;
    op.key.block = st.next_block++;
    op.key.inode = 1 + (op.key.block % 97);
    op.key.offset = op.key.block;
    op.key.length = 1;
    batch.push_back(op);
  }
  return batch;
}

/// Unbounded future sinks drained by reaper threads, so the dispatcher
/// never blocks on completion (that would close the loop). Every future is
/// eventually .get(): an exception anywhere counts as a dropped op.
class Reaper {
 public:
  void put(std::future<void> f) {
    std::lock_guard<std::mutex> lk(mu_);
    q_.push_back(std::move(f));
    cv_.notify_one();
  }

  void run() {
    for (;;) {
      std::future<void> f;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !q_.empty() || done_; });
        if (q_.empty()) return;
        f = std::move(q_.front());
        q_.pop_front();
      }
      try {
        f.get();
        completed_.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        const auto n = dropped_.fetch_add(1, std::memory_order_relaxed);
        if (n < 5) std::fprintf(stderr, "dropped op: %s\n", e.what());
      }
    }
  }

  void finish() {
    std::lock_guard<std::mutex> lk(mu_);
    done_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::future<void>> q_;
  bool done_ = false;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Wrap any future type into future<void> for the reaper (the result values
/// themselves are not interesting to the load generator).
template <typename T>
std::future<void> discard_value(std::future<T> f) {
  return std::async(std::launch::deferred,
                    [f = std::move(f)]() mutable { f.get(); });
}

/// Closed-loop capacity probe: feed `batch`-sized apply_batch rounds across
/// every tenant with a bounded in-flight window for ~250 ms and report the
/// sustained update ops/s. The same op generator as the open-loop phase, so
/// the capacity estimate matches the offered workload's shape.
double calibrate_capacity(bsvc::VolumeManager& vm,
                          std::vector<TenantState>& states,
                          const Config& cfg) {
  constexpr std::size_t kWindow = 32;
  const double t0 = bench::now_seconds();
  std::deque<std::future<void>> inflight;
  std::uint64_t ops = 0;
  std::size_t t = 0;
  while (bench::now_seconds() - t0 < 0.25) {
    while (inflight.size() >= kWindow) {
      inflight.front().get();
      inflight.pop_front();
    }
    inflight.push_back(
        vm.apply_batch(tenant_name(t), make_batch(states[t], cfg.batch)));
    ops += cfg.batch;
    t = (t + 1) % cfg.tenants;
  }
  while (!inflight.empty()) {
    inflight.front().get();
    inflight.pop_front();
  }
  const double secs = bench::now_seconds() - t0;
  return static_cast<double>(ops) / secs;
}

struct ChaosCounters {
  std::atomic<std::uint64_t> kills{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> forced_migrations{0};
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> clones{0};
  std::atomic<std::uint64_t> destroys{0};
  std::atomic<std::uint64_t> wal_point_kills{0};
  std::atomic<std::uint64_t> wounds{0};
  std::atomic<std::uint64_t> heals{0};
  /// Graceful-degradation invariant violations observed live: a wounded
  /// volume whose write did NOT fail kWounded, whose read failed, or whose
  /// reopen did not heal it. Any nonzero fails the run.
  std::atomic<std::uint64_t> wound_failures{0};
};

/// The five durability ordering points ServiceOptions::wal_checkpoint fires
/// at — the same names the crash matrix forks on in test_wal_recovery.
constexpr const char* kWalPoints[] = {"wal_appended", "wal_synced",
                                      "cp_flushed", "registry_persisted",
                                      "wal_truncated"};

/// Synchronizes the chaos actor's shard kills with the durability pipeline:
/// the actor arms one point, the first shard thread to pass it trips the
/// switch and records itself (the hook runs on the shard thread, so
/// WorkerPool::current_shard() names it), and the actor kills that exact
/// shard — the worker dies at its next chunk boundary, i.e. with that
/// shard's WAL window / CP mid-flight just past the armed point. Nothing
/// may be lost: parked group-commit acks must deliver on restart.
struct WalKillSwitch {
  std::atomic<int> armed{-1};  // index into kWalPoints, -1 disarmed
  std::atomic<std::size_t> hit_shard{bsvc::WorkerPool::kNoShard};
};

/// The chaos actor: kill/restart a shard (randomly timed and again at an
/// armed WAL injection point), force an explicit migration, churn a
/// snapshot+clone+destroy cycle, and wound/heal a dedicated volume —
/// repeatedly, until told to stop. Runs on its own thread; every action is
/// synchronous here (the *service* must stay asynchronous under it, not the
/// actor).
void chaos_loop(bsvc::VolumeManager& vm, const Config& cfg,
                std::atomic<bool>& stop, ChaosCounters& counters,
                WalKillSwitch& wal_kill) {
  util::Rng rng(cfg.seed ^ 0xc4a05u);
  std::deque<std::string> churn_clones;
  std::uint64_t churn_seq = 0;
  // Monotonic across rounds: blocks consumed by a refused (wounded) batch
  // are never reused, so reopen-recovered state never sees a duplicate add.
  TenantState wound_st;
  while (!stop.load(std::memory_order_acquire)) {
    // 1. Kill a shard, leave it dead briefly, bring it back. Tasks routed
    // there accumulate in the open queue and drain on restart.
    const auto victim = static_cast<std::size_t>(rng.below(cfg.shards));
    if (vm.kill_shard(victim)) {
      counters.kills.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      vm.restart_shard(victim);
      counters.restarts.fetch_add(1, std::memory_order_relaxed);
    }
    if (stop.load(std::memory_order_acquire)) break;
    // 1b. Kill at a WAL injection point: arm one of the five durability
    // ordering points and kill whichever shard trips it — the worker dies
    // with open group-commit windows / a mid-flight CP on that shard, and
    // restart must still deliver every parked ack (the reaper counts any
    // loss as a dropped op).
    {
      const int point = static_cast<int>(rng.below(
          sizeof kWalPoints / sizeof kWalPoints[0]));
      wal_kill.hit_shard.store(bsvc::WorkerPool::kNoShard,
                               std::memory_order_release);
      wal_kill.armed.store(point, std::memory_order_release);
      std::size_t shard = bsvc::WorkerPool::kNoShard;
      for (int spins = 0;
           spins < 150 && !stop.load(std::memory_order_acquire); ++spins) {
        shard = wal_kill.hit_shard.load(std::memory_order_acquire);
        if (shard != bsvc::WorkerPool::kNoShard) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      wal_kill.armed.store(-1, std::memory_order_release);
      if (shard < cfg.shards && vm.kill_shard(shard)) {
        counters.kills.fetch_add(1, std::memory_order_relaxed);
        counters.wal_point_kills.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        vm.restart_shard(shard);
        counters.restarts.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (stop.load(std::memory_order_acquire)) break;
    // 2. Forced explicit migration of a random open-loop tenant (not
    // require_clean: mid-window volumes get a forced consistency point,
    // exactly the disruptive case).
    const auto mover = static_cast<std::size_t>(rng.below(cfg.tenants));
    const auto target = static_cast<std::size_t>(rng.below(cfg.shards));
    try {
      const bsvc::MigrationStats ms =
          vm.migrate_volume(tenant_name(mover), target);
      if (ms.moved) {
        counters.forced_migrations.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const std::logic_error&) {
      // Lost the race with the balancer's in-flight handoff; fine.
    }
    if (stop.load(std::memory_order_acquire)) break;
    // 3. Snapshot/clone/destroy churn, on volumes that receive no open-loop
    // traffic (so a destroy never races a scheduled arrival).
    try {
      const std::string src = churn_seq % 2 == 0 ? "churn-a" : "churn-b";
      const bc::Epoch version = vm.take_snapshot(src).get();
      counters.snapshots.fetch_add(1, std::memory_order_relaxed);
      char name[32];
      std::snprintf(name, sizeof name, "churn-c%llu",
                    static_cast<unsigned long long>(churn_seq++));
      vm.clone_volume(src, name, 0, version);
      counters.clones.fetch_add(1, std::memory_order_relaxed);
      churn_clones.emplace_back(name);
      if (churn_clones.size() > 3) {
        vm.destroy_volume(churn_clones.front());
        counters.destroys.fetch_add(1, std::memory_order_relaxed);
        churn_clones.pop_front();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos churn error: %s\n", e.what());
    }
    if (stop.load(std::memory_order_acquire)) break;
    // 4. Wound/heal the dedicated wound volume (no open-loop or verifier
    // traffic touches it): arm a sticky EIO write fault on its private Env,
    // then check the degradation contract live — the next write fails with
    // typed kWounded, reads keep serving, and a reopen (close + open with a
    // fresh Env) heals it. Every violated check counts a wound_failure,
    // which fails the run.
    try {
      vm.apply_batch("wound-a", make_batch(wound_st, 16))
          .get();  // a healed volume accepts writes
      vm.with_env("wound-a", [](bs::Env& env, bc::BacklogDb&) {
          env.set_write_fault({bs::Env::WriteFaultMode::kEio, 0, true});
        }).get();
      bool wounded_as_expected = false;
      try {
        vm.apply_batch("wound-a", make_batch(wound_st, 16)).get();
      } catch (const bsvc::ServiceError& e) {
        wounded_as_expected = e.code() == bsvc::ErrorCode::kWounded;
      }
      counters.wounds.fetch_add(1, std::memory_order_relaxed);
      if (!wounded_as_expected) {
        counters.wound_failures.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "wound check failed: write did not fail kWounded\n");
      }
      vm.query("wound-a", 0).get();  // reads must survive the wound
      try {
        vm.close_volume("wound-a");
      } catch (const std::exception&) {
        // The close's final flush goes through the still-faulted Env and
        // may fail; the volume closes regardless (teardown is uncondi-
        // tional) and the reopen below recovers the last acked state.
      }
      vm.open_volume("wound-a");
      vm.apply_batch("wound-a", make_batch(wound_st, 16))
          .get();  // the reopen healed it
      counters.heals.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      counters.wound_failures.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "wound round failed: %s\n", e.what());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int run(const Config& cfg) {
  bs::TempDir dir("backlog_fleet_sim");
  // Declared before the VolumeManager so the wal_checkpoint hook can still
  // read it while the manager tears down (final CPs fire the points too).
  WalKillSwitch wal_kill;
  bsvc::ServiceOptions opts;
  opts.shards = cfg.shards;
  opts.root = dir.path();
  opts.sync_writes = false;
  opts.db_options.expected_ops_per_cp = 4096;
  if (cfg.chaos) {
    // Chaos runs the full durability pipeline underneath the fleet: every
    // ack is fsync-covered via the group-commit window, and the injection
    // hook feeds the kill switch so the actor can land shard kills at
    // exact pipeline points. quiet/overload keep the CP-only seed config
    // (their SLO baselines predate the WAL).
    opts.wal_enabled = true;
    opts.wal_commit_window_micros = 2000;
    opts.wal_checkpoint = [&wal_kill](std::string_view point) {
      int want = wal_kill.armed.load(std::memory_order_acquire);
      if (want < 0 || point != kWalPoints[want]) return;
      if (wal_kill.armed.compare_exchange_strong(want, -1,
                                                 std::memory_order_acq_rel)) {
        wal_kill.hit_shard.store(bsvc::WorkerPool::current_shard(),
                                 std::memory_order_release);
      }
    };
  }
  bsvc::VolumeManager vm(opts);

  std::printf("fleet_sim: scenario=%s tenants=%zu shards=%zu util=%.2f\n",
              cfg.scenario.c_str(), cfg.tenants, cfg.shards, cfg.util);

  // Open the open-loop fleet and give every tenant its class weight (rates
  // stay unlimited: overload must show up as honest queueing delay, not as
  // token-bucket throttling).
  std::vector<TenantState> states(cfg.tenants);
  for (std::size_t i = 0; i < cfg.tenants; ++i) {
    vm.open_volume(tenant_name(i));
    bsvc::TenantQos qos;
    qos.weight = bfs::weight_of(bfs::class_of_tenant(i));
    qos.max_wait_queue = 1 << 20;
    vm.set_qos(tenant_name(i), qos);
  }

  // Capacity calibration (before the verifier fleet spins up). The offered
  // rate is `util * capacity` ops/s; if that needs more than ~8k arrivals/s
  // the batch grows instead, so a single dispatcher thread always submits
  // on schedule (a lagging *driver* must never soften the offered load).
  double capacity = cfg.rate > 0 ? 0.0 : calibrate_capacity(vm, states, cfg);
  std::size_t batch = cfg.batch;
  double arrivals_per_sec = cfg.rate;
  if (cfg.rate <= 0) {
    constexpr double kMaxArrivalsPerSec = 8000.0;
    const double offered = cfg.util * capacity;
    arrivals_per_sec =
        std::max(1.0, offered / static_cast<double>(batch));
    if (arrivals_per_sec > kMaxArrivalsPerSec) {
      batch = static_cast<std::size_t>(offered / kMaxArrivalsPerSec) + 1;
      arrivals_per_sec = offered / static_cast<double>(batch);
    }
  }
  std::printf("fleet_sim: capacity=%.0f ops/s offered=%.0f ops/s batch=%zu\n",
              capacity, arrivals_per_sec * static_cast<double>(batch), batch);

  bfs::OpenLoopOptions olo;
  olo.tenants = cfg.tenants;
  olo.zipf_alpha = cfg.zipf_alpha;
  olo.arrivals_per_sec = arrivals_per_sec;
  olo.duration_micros =
      static_cast<std::uint64_t>(cfg.duration_s * 1e6);
  olo.seed = cfg.seed;
  const std::vector<bfs::ArrivalEvent> schedule =
      bfs::build_arrival_schedule(olo);

  // The PR 6 observability substrate is the SLO source: MetricsPoller for
  // windowed rates, the registry queue-wait histogram for the fleet row,
  // per-tenant ServiceStats histograms for the per-class verdicts.
  bsvc::MetricsPoller poller(vm, std::chrono::milliseconds(250));
  poller.start();

  // Chaos substrate: ground-truth verifier fleet + churn volumes +
  // aggressive balancer + the chaos actor itself.
  std::vector<backlog::fsim::TenantWorkload> verifier_fleet;
  std::thread verifier_thread;
  std::vector<backlog::fsim::TenantReplayResult> verifier_results;
  std::atomic<bool> verifier_failed{false};
  std::string verifier_error;
  std::unique_ptr<bsvc::Balancer> balancer;
  std::atomic<bool> chaos_stop{false};
  ChaosCounters chaos_counters;
  std::thread chaos_thread;
  if (cfg.chaos) {
    backlog::fsim::FleetOptions fo;
    fo.tenants = 6;
    fo.total_ops = 48000;
    fo.shape = backlog::fsim::FleetShape::kUniform;
    fo.seed = cfg.seed ^ 0x5eedu;
    fo.name_prefix = "verify-";
    fo.base.snapshot_every_ops = 1500;
    fo.base.clone_every_ops = 2500;
    fo.base.migrate_every_ops = 3000;
    verifier_fleet = backlog::fsim::synthesize_fleet(fo);
    for (const auto& w : verifier_fleet) vm.open_volume(w.tenant);
    for (const char* churn : {"churn-a", "churn-b"}) {
      vm.open_volume(churn);
      TenantState st;
      vm.apply_batch(churn, make_batch(st, 512)).get();
      vm.consistency_point(churn).get();
    }
    vm.open_volume("wound-a");  // the wound/heal round's dedicated volume
    bsvc::BalancerPolicy bp;
    bp.poll_interval = std::chrono::milliseconds(100);
    bp.cooldown = std::chrono::milliseconds(300);
    bp.hysteresis = 1.1;
    bp.min_load_to_act = 16;
    balancer = std::make_unique<bsvc::Balancer>(vm, bp);
    balancer->start();
    verifier_thread = std::thread([&] {
      try {
        backlog::fsim::ReplayOptions ro;
        ro.batch_ops = 128;
        ro.use_apply_batch = true;
        ro.ops_per_cp = 2000;
        ro.query_every_ops = 64;
        verifier_results = backlog::fsim::replay_concurrently(
            vm, verifier_fleet, ro);
      } catch (const std::exception& e) {
        verifier_failed.store(true);
        verifier_error = e.what();
      }
    });
    chaos_thread = std::thread(
        [&] { chaos_loop(vm, cfg, chaos_stop, chaos_counters, wal_kill); });
  }

  // --- the open-loop dispatcher ---------------------------------------------
  Reaper reaper;
  std::thread reaper_threads[2];
  for (auto& rt : reaper_threads) rt = std::thread([&] { reaper.run(); });

  constexpr std::uint64_t kCpEveryArrivals = 8;
  constexpr std::uint64_t kQueryEveryArrivals = 4;
  std::uint64_t offered_ops = 0;
  std::uint64_t max_lag_micros = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const bfs::ArrivalEvent& ev : schedule) {
    const auto due = start + std::chrono::microseconds(ev.at_micros);
    auto now = std::chrono::steady_clock::now();
    if (due > now) {
      std::this_thread::sleep_until(due);
    } else {
      // The dispatcher itself fell behind schedule (distinct from service
      // queueing!). Track it so a saturated *driver* can't masquerade as a
      // healthy service.
      const auto lag = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - due)
              .count());
      max_lag_micros = std::max(max_lag_micros, lag);
    }
    const std::string name = tenant_name(ev.tenant);
    TenantState& st = states[ev.tenant];
    reaper.put(vm.apply_batch(name, make_batch(st, batch)));
    offered_ops += batch;
    ++st.arrivals;
    if (st.arrivals % kCpEveryArrivals == 0) {
      reaper.put(discard_value(vm.consistency_point(name)));
    }
    if (st.arrivals % kQueryEveryArrivals == 0 && st.next_block > 0) {
      reaper.put(discard_value(vm.query(name, st.next_block - 1)));
    }
  }
  const double dispatch_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Tear down chaos before draining: every shard must be alive for the
  // backlog (and the verifier) to finish.
  if (cfg.chaos) {
    chaos_stop.store(true, std::memory_order_release);
    chaos_thread.join();
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      if (!vm.shard_alive(s)) vm.restart_shard(s);
    }
  }

  // Drain: all submitted futures complete (the open loop closes only after
  // the offered window has fully elapsed, so queue growth during the window
  // is already in the histograms).
  reaper.finish();
  for (auto& rt : reaper_threads) rt.join();
  const double total_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Verifier epilogue: replay must complete and every tenant's live set
  // must match its trace's ground truth exactly.
  std::uint64_t divergence = 0;
  if (cfg.chaos) {
    verifier_thread.join();
    balancer->stop();
    if (verifier_failed.load()) {
      std::fprintf(stderr, "verifier replay failed: %s\n",
                   verifier_error.c_str());
      divergence = verifier_fleet.size();
    } else {
      for (std::size_t i = 0; i < verifier_fleet.size(); ++i) {
        const auto& w = verifier_fleet[i];
        if (verifier_results[i].ops != w.trace.ops.size()) {
          ++divergence;
          continue;
        }
        std::set<bc::BackrefKey> expect(w.trace.live_keys.begin(),
                                        w.trace.live_keys.end());
        std::set<bc::BackrefKey> got;
        for (const auto& rec : vm.scan_all(w.tenant).get()) {
          if (rec.to == bc::kInfinity) got.insert(rec.key);
        }
        if (got != expect) {
          ++divergence;
          std::fprintf(stderr, "verifier divergence: %s live=%zu expect=%zu\n",
                       w.tenant.c_str(), got.size(), expect.size());
        }
      }
    }
  }

  poller.stop();
  const bsvc::RateSample rates = poller.poll_once();
  bsvc::ServiceStats stats = vm.stats();

  const unsigned cores = std::thread::hardware_concurrency();
  bench::JsonRow config_row;
  config_row.str("bench", "fleet_sim")
      .str("row", "config")
      .str("scenario", cfg.scenario)
      .num("tenants", cfg.tenants)
      .num("shards", cfg.shards)
      .num("batch", batch)
      .num("seed", cfg.seed)
      .num("duration_s", cfg.duration_s)
      .num("util", cfg.util)
      .num("capacity_ops_per_second", capacity)
      .num("arrivals_per_second", arrivals_per_sec)
      .num("hardware_concurrency", cores)
      .num("pinned", vm.shards_pinned() ? 1 : 0);
  config_row.print();

  // Per-class SLO verdicts off the per-tenant queue-wait histograms.
  const std::vector<bfs::SloVerdict> verdicts = bfs::evaluate_fleet_slo(
      stats,
      [](const std::string& name) -> std::optional<bfs::QosClass> {
        const auto idx = tenant_index(name);
        if (!idx) return std::nullopt;
        return bfs::class_of_tenant(*idx);
      },
      bfs::default_slo_table());
  bool all_pass = true;
  for (const bfs::SloVerdict& v : verdicts) {
    all_pass = all_pass && v.pass;
    std::printf("slo[%s]: p99_wait=%lluus target=%lluus samples=%llu %s\n",
                bfs::to_string(v.cls),
                static_cast<unsigned long long>(v.p99_micros),
                static_cast<unsigned long long>(v.target_micros),
                static_cast<unsigned long long>(v.samples),
                v.pass ? "PASS" : "BREACH");
    bench::JsonRow row;
    row.str("bench", "fleet_sim")
        .str("row", "slo")
        .str("scenario", cfg.scenario)
        .str("class", bfs::to_string(v.cls))
        .num("samples", v.samples)
        .num("p99_queue_wait_us", v.p99_micros)
        .num("target_us", v.target_micros)
        .num("pass", v.pass ? 1 : 0)
        .num("hardware_concurrency", cores);
    row.print();
  }

  // Fleet row: offered vs achieved, plus the registry-level (fleet-wide)
  // queue-wait histogram — the same handle the Prometheus export scrapes.
  const bsvc::LatencyHistogram fleet_wait =
      vm.metrics()
          .histogram("backlog_queue_wait_micros",
                     "Submit-to-execute delay (queue plus gate wait) of "
                     "waiting ops")
          .merged();
  bench::JsonRow fleet_row;
  fleet_row.str("bench", "fleet_sim")
      .str("row", "fleet")
      .str("scenario", cfg.scenario)
      .num("offered_ops", offered_ops)
      .num("completed_futures", reaper.completed())
      .num("dropped_ops", reaper.dropped())
      .num("offered_ops_per_second",
           dispatch_secs > 0 ? static_cast<double>(offered_ops) / dispatch_secs
                             : 0.0)
      .num("drain_seconds", total_secs - dispatch_secs)
      .num("max_dispatch_lag_us", max_lag_micros)
      .num("fleet_p99_queue_wait_us", fleet_wait.p99())
      .num("fleet_max_queue_wait_us", fleet_wait.max_micros())
      .num("poller_update_ops_per_sec", rates.update_ops_per_sec)
      .num("hardware_concurrency", cores);
  fleet_row.print();

  if (cfg.chaos) {
    bench::JsonRow chaos_row;
    chaos_row.str("bench", "fleet_sim")
        .str("row", "chaos")
        .str("scenario", cfg.scenario)
        .num("shard_kills", chaos_counters.kills.load())
        .num("shard_restarts", chaos_counters.restarts.load())
        .num("wal_point_kills", chaos_counters.wal_point_kills.load())
        .num("forced_migrations", chaos_counters.forced_migrations.load())
        .num("snapshots", chaos_counters.snapshots.load())
        .num("clones", chaos_counters.clones.load())
        .num("destroys", chaos_counters.destroys.load())
        .num("wounds", chaos_counters.wounds.load())
        .num("heals", chaos_counters.heals.load())
        .num("wound_failures", chaos_counters.wound_failures.load())
        .num("verifier_tenants", verifier_fleet.size())
        .num("verifier_divergence", divergence)
        .num("dropped_ops", reaper.dropped())
        .num("hardware_concurrency", cores);
    chaos_row.print();
    std::printf(
        "chaos: kills=%llu (at-wal-point=%llu) migrations=%llu clones=%llu "
        "wounds=%llu heals=%llu wound_failures=%llu divergence=%llu "
        "dropped=%llu\n",
        static_cast<unsigned long long>(chaos_counters.kills.load()),
        static_cast<unsigned long long>(chaos_counters.wal_point_kills.load()),
        static_cast<unsigned long long>(
            chaos_counters.forced_migrations.load()),
        static_cast<unsigned long long>(chaos_counters.clones.load()),
        static_cast<unsigned long long>(chaos_counters.wounds.load()),
        static_cast<unsigned long long>(chaos_counters.heals.load()),
        static_cast<unsigned long long>(
            chaos_counters.wound_failures.load()),
        static_cast<unsigned long long>(divergence),
        static_cast<unsigned long long>(reaper.dropped()));
    if (divergence != 0 || reaper.dropped() != 0 ||
        chaos_counters.wound_failures.load() != 0) {
      return 1;
    }
  }
  std::printf("fleet_sim: %s (%s)\n", all_pass ? "all SLOs met" : "SLO breach",
              cfg.scenario.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  if (cfg.selftest_json) {
    // Hostile-name round trip for the CI `python -m json.tool` check: the
    // JSONROW must stay valid JSON with quotes, backslashes and control
    // characters in the value.
    bench::JsonRow row;
    row.str("bench", "fleet_sim")
        .str("row", "selftest")
        .str("scenario", "he said \"quiet\\loud\"\tand\nleft\x01")
        .num("pass", 1);
    row.print();
    return 0;
  }
  return run(cfg);
}
