// Durable-ops/s: per-batch fsync vs the group-commit WAL window.
//
// Every case hosts N volumes on ONE shard with the WAL enabled and pushes
// the same open-loop update stream (submit every batch, then wait for all
// acks — an ack means the batch's WAL record is fsync-covered). The only
// variable is wal_commit_window_micros:
//
//   window 0   — the baseline: every batch fsyncs its own record inline on
//                the shard thread before its future resolves;
//   window > 0 — group commit: one flush sweep per window fsyncs each dirty
//                volume once, and every batch that landed meanwhile rides it.
//
// The shard thread serializes the fsyncs either way, so the baseline pays
// (batches x fsync) while group commit pays (windows x dirty volumes) —
// durable throughput scales with batching instead of with fsync count.
//
// Emits one JSONROW per case:
//
//   JSONROW {"bench":"durability","window_us":...,"volumes":...,
//            "batch_ops":...,"batches":...,"durable_ops_per_second":...,
//            "wal_records":...,"wal_fsyncs":...,"fsync_micros_mean":...}
//
// tools/check_bench_regression.py gates on these rows at the widest fleet:
// group commit must amortize (records/fsync >= 3, machine-independent) and
// must beat the per-batch baseline >= 3x in durable-ops/s (self-skips where
// fsync is too cheap for amortization to be measurable, e.g. tmpfs).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace {

namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace bench = backlog::bench;

constexpr std::uint64_t kBatchOps = 16;
constexpr std::uint64_t kBatchesPerVolume = 64;
constexpr std::uint32_t kWindowMicros = 2000;

struct CaseResult {
  double ops_per_second = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_fsyncs = 0;
  double fsync_micros_mean = 0;
};

std::string vol_name(std::size_t v) { return "vol" + std::to_string(v); }

CaseResult run_case(std::size_t volumes, std::uint32_t window_us) {
  bs::TempDir dir("backlog_durability");
  bsvc::ServiceOptions so;
  so.shards = 1;  // one shard thread: the fsync serialization point
  so.root = dir.path();
  so.db_options.expected_ops_per_cp = kBatchesPerVolume * kBatchOps;
  so.wal_enabled = true;
  so.wal_commit_window_micros = window_us;
  bsvc::VolumeManager vm(so);

  for (std::size_t v = 0; v < volumes; ++v) vm.open_volume(vol_name(v));

  // Warm-up batch per volume: WAL file creation and first-touch costs land
  // here, not in the measured window.
  const auto make_batch = [](std::uint64_t first_block) {
    std::vector<bsvc::UpdateOp> batch;
    batch.reserve(kBatchOps);
    for (std::uint64_t i = 0; i < kBatchOps; ++i) {
      bsvc::UpdateOp op;
      op.kind = bsvc::UpdateOp::Kind::kAdd;
      op.key.block = first_block + i;
      op.key.inode = 2;
      op.key.length = 1;
      batch.push_back(op);
    }
    return batch;
  };
  for (std::size_t v = 0; v < volumes; ++v) {
    vm.apply_batch(vol_name(v), make_batch(v << 32)).get();
  }
  const std::uint64_t warm_records =
      static_cast<std::uint64_t>(
          vm.metrics().counter("backlog_wal_records_total", "").total());
  const std::uint64_t warm_fsyncs =
      static_cast<std::uint64_t>(
          vm.metrics().counter("backlog_wal_syncs_total", "").total());

  // Open loop, one driver thread per volume (a fleet's update stream comes
  // from many connections — a single submitter would cap how much a window
  // can accumulate): each thread submits its batches without waiting, then
  // drains its acks.
  const double t0 = bench::now_seconds();
  std::vector<std::thread> drivers;
  std::vector<double> submit_done(volumes, 0);
  drivers.reserve(volumes);
  for (std::size_t v = 0; v < volumes; ++v) {
    drivers.emplace_back([&, v] {
      std::vector<std::future<void>> acks;
      acks.reserve(kBatchesPerVolume);
      for (std::uint64_t r = 0; r < kBatchesPerVolume; ++r) {
        acks.push_back(vm.apply_batch(
            vol_name(v), make_batch((v << 32) | ((r + 1) * kBatchOps))));
      }
      submit_done[v] = bench::now_seconds() - t0;
      for (auto& f : acks) f.get();
    });
  }
  for (auto& t : drivers) t.join();
  const double elapsed = bench::now_seconds() - t0;
  double submit_max = 0;
  for (double s : submit_done) submit_max = std::max(submit_max, s);
  std::printf("    [submit phase: %.1f ms of %.1f ms total]\n",
              submit_max * 1e3, elapsed * 1e3);

  CaseResult res;
  res.ops_per_second =
      static_cast<double>(volumes * kBatchesPerVolume * kBatchOps) / elapsed;
  res.wal_records =
      static_cast<std::uint64_t>(
          vm.metrics().counter("backlog_wal_records_total", "").total()) -
      warm_records;
  res.wal_fsyncs =
      static_cast<std::uint64_t>(
          vm.metrics().counter("backlog_wal_syncs_total", "").total()) -
      warm_fsyncs;
  bs::IoStats io;
  for (std::size_t v = 0; v < volumes; ++v) {
    io += vm.io_stats(vol_name(v)).get();
  }
  if (io.fsyncs > 0) {
    res.fsync_micros_mean =
        static_cast<double>(io.fsync_micros) / static_cast<double>(io.fsyncs);
  }
  return res;
}

void report(std::size_t volumes, std::uint32_t window_us,
            const CaseResult& r) {
  std::printf("  volumes %2zu  window %5u us  %10.0f durable ops/s  "
              "records %5llu  fsyncs %5llu  (fsync mean %.0f us)\n",
              volumes, window_us, r.ops_per_second,
              static_cast<unsigned long long>(r.wal_records),
              static_cast<unsigned long long>(r.wal_fsyncs),
              r.fsync_micros_mean);
  bench::JsonRow()
      .str("bench", "durability")
      .num("window_us", window_us)
      .num("volumes", static_cast<std::uint64_t>(volumes))
      .num("batch_ops", kBatchOps)
      .num("batches", kBatchesPerVolume)
      .num("durable_ops_per_second", r.ops_per_second)
      .num("wal_records", r.wal_records)
      .num("wal_fsyncs", r.wal_fsyncs)
      .num("fsync_micros_mean", r.fsync_micros_mean)
      .print();
}

}  // namespace

int main() {
  const auto scale = backlog::bench::Scale::from_env();
  bench::print_header(
      "durability: per-batch fsync vs group-commit WAL window",
      "one fsync per dirty volume per window covers every parked batch",
      scale);
  std::printf("per volume: %llu batches x %llu ops, 1 shard, window %u us\n",
              static_cast<unsigned long long>(kBatchesPerVolume),
              static_cast<unsigned long long>(kBatchOps), kWindowMicros);

  double base8 = 0, group8 = 0;
  for (const std::size_t volumes : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const CaseResult perop = run_case(volumes, 0);
    report(volumes, 0, perop);
    const CaseResult group = run_case(volumes, kWindowMicros);
    report(volumes, kWindowMicros, group);
    if (volumes == 8) {
      base8 = perop.ops_per_second;
      group8 = group.ops_per_second;
    }
  }
  if (base8 > 0) {
    std::printf("\ngroup commit at 8 volumes: %.1fx the per-batch baseline "
                "(target >= 3x where fsync is real)\n",
                group8 / base8);
  }
  return 0;
}
