// Figure 7 reproduction: per-block-operation overhead while replaying an
// NFS trace (EECS03-like; see DESIGN.md substitutions).
//
// Paper result: usually 8-9 µs and 0.010-0.015 page writes per block op,
// stable over the 16-day replay, with two distinctive features:
//   * spikes during *low-load* periods (the constant per-CP cost is
//     amortized over fewer operations — harmless, the system is idle), and
//   * a *dip* during a truncate/setattr-heavy interval (hours ~200-250)
//     where most references die within the CP that created them, so
//     proactive pruning keeps them out of the read store entirely.
//
// Scaled: 48 simulated hours with the same diurnal + truncate-phase shape.
#include <cinttypes>

#include "bench_common.hpp"
#include "fsim/trace.hpp"

using namespace backlog;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  bench::print_header(
      "Figure 7: NFS-trace overhead per block operation over time",
      "8-9 us/op steady; spikes at low load; dip in the truncate-heavy phase",
      scale);

  storage::TempDir dir;
  storage::Env env(dir.path());
  env.set_sync(false);  // measure the algorithm, not the host disk
  fsim::FsimOptions fo = bench::paper_fsim_options(scale);
  fsim::FileSystem fs(env, fo, bench::paper_backlog_options(scale));

  fsim::TraceSynthOptions to;
  to.hours = 48;
  to.ops_per_second_peak = 24.0 * 16.0 / static_cast<double>(scale.divisor);
  to.truncate_phase_begin = 0.55;  // hours ~26-34 of 48
  to.truncate_phase_end = 0.70;
  to.seed = 2003;
  const fsim::Trace trace = fsim::synthesize_eecs03_like(to);
  std::printf("trace: %zu ops over %.0f simulated hours\n", trace.ops.size(),
              to.hours);

  fsim::TracePlayer player(fs, 0);
  const auto hours = player.play(trace);

  std::printf("%6s %12s %14s %12s %8s\n", "hour", "block_ops", "io_writes/op",
              "us/op", "cps");
  for (const auto& h : hours) {
    if (h.block_ops == 0) {
      std::printf("%6.0f %12s %14s %12s %8" PRIu64 "\n", h.hour, "idle", "-",
                  "-", h.cps);
      continue;
    }
    std::printf("%6.0f %12" PRIu64 " %14.4f %12.2f %8" PRIu64 "\n", h.hour,
                h.block_ops,
                static_cast<double>(h.pages_written) / h.block_ops,
                static_cast<double>(h.cp_micros) / h.block_ops, h.cps);
  }
  std::printf(
      "\ncheck: us/op flat overall; higher in low-op hours (night spikes);\n"
      "       lower in hours %.0f-%.0f (truncate phase: pruning wins).\n",
      to.hours * to.truncate_phase_begin, to.hours * to.truncate_phase_end);
  return 0;
}
